#include "cdn/catalog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cdnsim::cdn {
namespace {

CatalogConfig base_config(std::size_t objects, ReplicaPolicy policy) {
  CatalogConfig cfg;
  cfg.object_count = objects;
  cfg.policy = policy;
  return cfg;
}

TEST(CatalogTest, WeightsAreNormalizedZipf) {
  const Catalog catalog(base_config(100, ReplicaPolicy::kProportional), 50);
  double total = 0;
  for (const auto& o : catalog.objects()) total += o.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Rank 0 is hottest, weights strictly decrease in rank (initial rank==id),
  // and adjacent ratios follow (r+1)^-s / (r+2)^-s.
  const double s = catalog.config().zipf_s;
  for (std::size_t r = 0; r + 1 < 100; ++r) {
    const double a = catalog.object(static_cast<ObjectId>(r)).weight;
    const double b = catalog.object(static_cast<ObjectId>(r + 1)).weight;
    EXPECT_GT(a, b);
    EXPECT_NEAR(a / b, std::pow((r + 2.0) / (r + 1.0), s), 1e-9);
  }
}

TEST(CatalogTest, ZipfZeroIsUniform) {
  CatalogConfig cfg = base_config(10, ReplicaPolicy::kProportional);
  cfg.zipf_s = 0.0;
  const Catalog catalog(cfg, 20);
  for (const auto& o : catalog.objects()) {
    EXPECT_NEAR(o.weight, 0.1, 1e-12);
    // Uniform weights: proportional allocation = the fixed budget.
    EXPECT_EQ(o.replicas, 2u);
  }
}

TEST(CatalogTest, FixedPolicyGivesEveryObjectTheSameCount) {
  CatalogConfig cfg = base_config(40, ReplicaPolicy::kFixed);
  cfg.replica_budget = 3.0;
  const Catalog catalog(cfg, 30);
  for (const auto& o : catalog.objects()) EXPECT_EQ(o.replicas, 3u);
  EXPECT_EQ(catalog.total_replicas(), 120u);
}

TEST(CatalogTest, ProportionalSpendsRoughlyTheBudgetAndFollowsRank) {
  CatalogConfig cfg = base_config(200, ReplicaPolicy::kProportional);
  cfg.replica_budget = 4.0;
  const Catalog catalog(cfg, 100);
  // min_replicas floors the cold tail, so total >= budget; it must not
  // balloon past floor + proportional head.
  const std::size_t total = catalog.total_replicas();
  EXPECT_GE(total, 200u);               // >= one copy each
  EXPECT_LE(total, 2u * 4u * 200u);     // sane upper bound
  // Replica counts are non-increasing in rank.
  for (std::size_t r = 0; r + 1 < 200; ++r) {
    EXPECT_GE(catalog.object(static_cast<ObjectId>(r)).replicas,
              catalog.object(static_cast<ObjectId>(r + 1)).replicas);
  }
  // The hot head gets strictly more than the tail.
  EXPECT_GT(catalog.object(0).replicas, catalog.object(199).replicas);
}

TEST(CatalogTest, SqrtPolicySitsBetweenFixedAndProportional) {
  CatalogConfig cfg = base_config(200, ReplicaPolicy::kProportional);
  cfg.replica_budget = 4.0;
  const Catalog proportional(cfg, 100);
  cfg.policy = ReplicaPolicy::kSqrtProportional;
  const Catalog sqrt_prop(cfg, 100);
  // sqrt flattens the allocation: less on the head, more on the tail.
  EXPECT_LT(sqrt_prop.object(0).replicas, proportional.object(0).replicas);
  EXPECT_GE(sqrt_prop.object(199).replicas, proportional.object(199).replicas);
}

TEST(CatalogTest, ReplicaCountsRespectClamps) {
  CatalogConfig cfg = base_config(50, ReplicaPolicy::kProportional);
  cfg.replica_budget = 10.0;
  cfg.min_replicas = 2;
  cfg.max_replicas = 8;
  const Catalog catalog(cfg, 20);
  for (const auto& o : catalog.objects()) {
    EXPECT_GE(o.replicas, 2u);
    EXPECT_LE(o.replicas, 8u);
  }
  // max_replicas = 0 means the whole server set; counts never exceed it.
  cfg.max_replicas = 0;
  const Catalog uncapped(cfg, 20);
  for (const auto& o : uncapped.objects()) EXPECT_LE(o.replicas, 20u);
}

TEST(CatalogTest, SingleObjectFullReplicationIsTheLegacyDemand) {
  // The catalog degenerates to the paper's setup: one object on every
  // server, users_per_replica == users_per_server exactly.
  CatalogConfig cfg = base_config(1, ReplicaPolicy::kFixed);
  cfg.replica_budget = 170.0;
  const Catalog catalog(cfg, 170);
  ASSERT_EQ(catalog.object(0).replicas, 170u);
  EXPECT_DOUBLE_EQ(catalog.object(0).weight, 1.0);
  EXPECT_EQ(catalog.users_per_replica(0, 3), 3u);
  EXPECT_EQ(catalog.users_per_replica(0, 17), 17u);
}

TEST(CatalogTest, ProportionalKeepsPerReplicaDemandFlat) {
  // The Leconte-style property the adaptive policy buys: viewers per
  // replica varies far less across the catalog than popularity does.
  CatalogConfig cfg = base_config(100, ReplicaPolicy::kProportional);
  cfg.replica_budget = 8.0;
  const Catalog catalog(cfg, 60);
  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  // Compare across the head, where clamps don't bind.
  for (ObjectId id = 0; id < 20; ++id) {
    const auto demand = catalog.users_per_replica(id, 10);
    lo = std::min(lo, demand);
    hi = std::max(hi, demand);
  }
  EXPECT_LE(hi, 3 * lo);
  // Under kFixed the head concentrates: object 0 sees far more per replica
  // than rank 19.
  cfg.policy = ReplicaPolicy::kFixed;
  const Catalog fixed(cfg, 60);
  EXPECT_GT(fixed.users_per_replica(0, 10),
            3 * fixed.users_per_replica(19, 10));
}

TEST(CatalogTest, ChurnIsDeterministicInTheRng) {
  CatalogConfig cfg = base_config(80, ReplicaPolicy::kProportional);
  Catalog a(cfg, 40);
  Catalog b(cfg, 40);
  util::Rng rng_a(123);
  util::Rng rng_b(123);
  const std::size_t changed_a = a.churn_hot_set(rng_a);
  const std::size_t changed_b = b.churn_hot_set(rng_b);
  EXPECT_EQ(changed_a, changed_b);
  for (ObjectId id = 0; id < 80; ++id) {
    EXPECT_EQ(a.object(id).rank, b.object(id).rank);
    EXPECT_EQ(a.object(id).replicas, b.object(id).replicas);
    EXPECT_DOUBLE_EQ(a.object(id).weight, b.object(id).weight);
  }
}

TEST(CatalogTest, ChurnPreservesTheRankPermutation) {
  CatalogConfig cfg = base_config(60, ReplicaPolicy::kProportional);
  Catalog catalog(cfg, 30);
  util::Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    catalog.churn_hot_set(rng);
    std::set<std::size_t> ranks;
    double total = 0;
    for (const auto& o : catalog.objects()) {
      ranks.insert(o.rank);
      total += o.weight;
      EXPECT_EQ(o.id, catalog.object(o.id).id);  // ids never move
    }
    // Ranks stay a permutation of 0..N-1 and weights stay normalized.
    EXPECT_EQ(ranks.size(), 60u);
    EXPECT_EQ(*ranks.begin(), 0u);
    EXPECT_EQ(*ranks.rbegin(), 59u);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(CatalogTest, ChurnTouchesOnlyThePool) {
  CatalogConfig cfg = base_config(100, ReplicaPolicy::kProportional);
  cfg.hot_churn_fraction = 0.05;  // pool = 5 hot + 5 drawn = at most 10
  Catalog catalog(cfg, 50);
  util::Rng rng(9);
  const std::size_t changed = catalog.churn_hot_set(rng);
  EXPECT_LE(changed, 10u);
}

TEST(CatalogTest, ZeroChurnFractionIsANoop) {
  CatalogConfig cfg = base_config(50, ReplicaPolicy::kProportional);
  cfg.hot_churn_fraction = 0.0;
  Catalog catalog(cfg, 25);
  util::Rng rng(1);
  EXPECT_EQ(catalog.churn_hot_set(rng), 0u);
  for (const auto& o : catalog.objects()) EXPECT_EQ(o.rank, o.id);
}

TEST(CatalogTest, PreconditionsThrow) {
  EXPECT_THROW(Catalog(base_config(0, ReplicaPolicy::kFixed), 10),
               cdnsim::PreconditionError);
  EXPECT_THROW(Catalog(base_config(10, ReplicaPolicy::kFixed), 0),
               cdnsim::PreconditionError);
  CatalogConfig bad = base_config(10, ReplicaPolicy::kFixed);
  bad.replica_budget = 0;
  EXPECT_THROW(Catalog(bad, 10), cdnsim::PreconditionError);
  bad = base_config(10, ReplicaPolicy::kFixed);
  bad.min_replicas = 30;  // exceeds the 10-server clamp
  EXPECT_THROW(Catalog(bad, 10), cdnsim::PreconditionError);
  const Catalog catalog(base_config(5, ReplicaPolicy::kFixed), 5);
  EXPECT_THROW(catalog.object(5), cdnsim::PreconditionError);
}

}  // namespace
}  // namespace cdnsim::cdn
