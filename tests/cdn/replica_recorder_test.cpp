#include "cdn/replica_recorder.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cdnsim::cdn {
namespace {

TEST(ReplicaRecorderTest, RecordsAcquisitionTimes) {
  ReplicaRecorder r(3);
  r.on_version(1, 12.0);
  r.on_version(2, 25.0);
  r.on_version(3, 33.0);
  EXPECT_DOUBLE_EQ(r.acquire_time(1), 12.0);
  EXPECT_DOUBLE_EQ(r.acquire_time(2), 25.0);
  EXPECT_DOUBLE_EQ(r.acquire_time(3), 33.0);
  EXPECT_EQ(r.current_version(), 3);
}

TEST(ReplicaRecorderTest, SkippedVersionsAcquiredImplicitly) {
  ReplicaRecorder r(4);
  r.on_version(3, 40.0);
  EXPECT_DOUBLE_EQ(r.acquire_time(1), 40.0);
  EXPECT_DOUBLE_EQ(r.acquire_time(2), 40.0);
  EXPECT_DOUBLE_EQ(r.acquire_time(3), 40.0);
  EXPECT_FALSE(r.acquired(4));
}

TEST(ReplicaRecorderTest, StaleDeliveriesIgnored) {
  ReplicaRecorder r(3);
  r.on_version(2, 20.0);
  r.on_version(1, 30.0);  // stale push arrives late
  EXPECT_EQ(r.current_version(), 2);
  EXPECT_DOUBLE_EQ(r.acquire_time(1), 20.0);
}

TEST(ReplicaRecorderTest, InconsistencyLengths) {
  const trace::UpdateTrace updates({10, 20, 30});
  ReplicaRecorder r(3);
  r.on_version(1, 12.0);
  r.on_version(2, 26.0);
  r.on_version(3, 37.0);
  const auto lengths = r.inconsistency_lengths(updates);
  ASSERT_EQ(lengths.size(), 3u);
  EXPECT_DOUBLE_EQ(lengths[0], 2.0);
  EXPECT_DOUBLE_EQ(lengths[1], 6.0);
  EXPECT_DOUBLE_EQ(lengths[2], 7.0);
  EXPECT_DOUBLE_EQ(r.average_inconsistency(updates), 5.0);
}

TEST(ReplicaRecorderTest, UnacquiredVersionsExcluded) {
  const trace::UpdateTrace updates({10, 20, 30});
  ReplicaRecorder r(3);
  r.on_version(1, 15.0);
  const auto lengths = r.inconsistency_lengths(updates);
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_DOUBLE_EQ(lengths[0], 5.0);
}

TEST(ReplicaRecorderTest, NoUpdatesAverageIsZero) {
  const trace::UpdateTrace updates;
  ReplicaRecorder r(0);
  EXPECT_DOUBLE_EQ(r.average_inconsistency(updates), 0.0);
}

TEST(ReplicaRecorderTest, MismatchedTraceThrows) {
  const trace::UpdateTrace updates({10, 20});
  ReplicaRecorder r(3);
  EXPECT_THROW(r.inconsistency_lengths(updates), cdnsim::PreconditionError);
}

TEST(ReplicaRecorderTest, OutOfRangeVersionThrows) {
  ReplicaRecorder r(2);
  EXPECT_THROW(r.on_version(3, 1.0), cdnsim::PreconditionError);
  EXPECT_THROW(r.acquire_time(0), cdnsim::PreconditionError);
  EXPECT_THROW(r.acquire_time(3), cdnsim::PreconditionError);
}

}  // namespace
}  // namespace cdnsim::cdn
