#include "cdn/dns.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/sites.hpp"
#include "util/error.hpp"

namespace cdnsim::cdn {
namespace {

topology::NodeRegistry make_registry(std::size_t n, std::uint64_t seed) {
  topology::NodeInfo provider;
  provider.location = net::atlanta_site().location;
  topology::NodeRegistry reg(provider);
  util::Rng rng(seed);
  const auto placements = net::place_nodes(n, net::PlacementConfig{}, rng);
  for (const auto& p : placements) reg.add_server({p.location, 0, p.site_index});
  return reg;
}

TEST(DnsTest, CandidatesAreNearestServers) {
  const auto reg = make_registry(100, 1);
  DnsConfig cfg;
  cfg.candidate_count = 5;
  DnsSystem dns(reg, cfg, util::Rng(2));
  const net::GeoPoint user{40.71, -74.01};  // NYC
  const UserId u = dns.register_user(user);
  const auto& candidates = dns.candidates(u);
  ASSERT_EQ(candidates.size(), 5u);
  // Every candidate must be closer to the user than the median server.
  std::vector<double> all;
  for (auto id : reg.server_ids()) {
    all.push_back(net::haversine_km(reg.location(id), user));
  }
  std::sort(all.begin(), all.end());
  const double median = all[all.size() / 2];
  for (auto id : candidates) {
    EXPECT_LT(net::haversine_km(reg.location(id), user), median + 1e-9);
  }
}

TEST(DnsTest, CachedResolutionIsStableUntilExpiry) {
  const auto reg = make_registry(50, 3);
  DnsConfig cfg;
  cfg.cache_expiry_mean_s = 60;
  cfg.cache_expiry_jitter_s = 0;
  DnsSystem dns(reg, cfg, util::Rng(4));
  const UserId u = dns.register_user({48.86, 2.35});
  const auto first = dns.resolve(u, 0.0);
  EXPECT_TRUE(first.reassigned);
  EXPECT_FALSE(first.redirected);  // no previous server
  for (double t = 10; t <= 60; t += 10) {
    const auto r = dns.resolve(u, t);
    EXPECT_EQ(r.server, first.server);
    EXPECT_FALSE(r.reassigned);
  }
  const auto later = dns.resolve(u, 61.0);
  EXPECT_TRUE(later.reassigned);
}

TEST(DnsTest, RedirectionFractionIsInPaperRange) {
  // Section 3.3: most users see 13-17% of visits redirected. With a 60 s
  // cache, 10 s visits and 8 candidates: 1/6 of visits reassigned, 7/8 of
  // reassignments land elsewhere -> ~14.5%.
  const auto reg = make_registry(200, 5);
  DnsConfig cfg;
  DnsSystem dns(reg, cfg, util::Rng(6));
  util::Rng urng(7);
  const auto placements = net::place_nodes(40, net::PlacementConfig{}, urng);
  double total_redirects = 0;
  double total_visits = 0;
  for (const auto& p : placements) {
    const UserId u = dns.register_user(p.location);
    topology::NodeId prev = -1;
    for (double t = 0; t < 9000; t += 10) {
      const auto r = dns.resolve(u, t);
      if (prev != -1) {
        total_visits += 1;
        if (r.server != prev) total_redirects += 1;
      }
      prev = r.server;
    }
  }
  EXPECT_NEAR(total_redirects / total_visits, 0.15, 0.05);
}

TEST(DnsTest, SmallFarmFewerCandidatesThanRequested) {
  const auto reg = make_registry(3, 8);
  DnsConfig cfg;
  cfg.candidate_count = 10;
  DnsSystem dns(reg, cfg, util::Rng(9));
  const UserId u = dns.register_user({0, 0});
  EXPECT_EQ(dns.candidates(u).size(), 3u);
}

TEST(DnsTest, ResolutionsStayWithinCandidateSet) {
  const auto reg = make_registry(60, 10);
  DnsSystem dns(reg, DnsConfig{}, util::Rng(11));
  const UserId u = dns.register_user({35.68, 139.69});
  const auto& candidates = dns.candidates(u);
  const std::set<topology::NodeId> set(candidates.begin(), candidates.end());
  for (double t = 0; t < 5000; t += 10) {
    EXPECT_TRUE(set.count(dns.resolve(u, t).server) > 0);
  }
}

TEST(DnsTest, UnknownUserThrows) {
  const auto reg = make_registry(5, 12);
  DnsSystem dns(reg, DnsConfig{}, util::Rng(13));
  EXPECT_THROW(dns.resolve(0, 0.0), cdnsim::PreconditionError);
  EXPECT_THROW(dns.candidates(7), cdnsim::PreconditionError);
}

TEST(DnsTest, InvalidConfigThrows) {
  const auto reg = make_registry(5, 14);
  DnsConfig bad;
  bad.candidate_count = 0;
  EXPECT_THROW(DnsSystem(reg, bad, util::Rng(1)), cdnsim::PreconditionError);
  DnsConfig bad2;
  bad2.cache_expiry_mean_s = 0;
  EXPECT_THROW(DnsSystem(reg, bad2, util::Rng(1)), cdnsim::PreconditionError);
}

}  // namespace
}  // namespace cdnsim::cdn
