// Property-based tests: invariants that must hold across parameter sweeps
// (TEST_P over methods, infrastructures, TTLs, seeds).
#include <gtest/gtest.h>

#include <tuple>

#include "core/simulation.hpp"
#include "trace/game_generator.hpp"
#include "util/stats.hpp"

namespace cdnsim {
namespace {

using consistency::InfrastructureKind;
using consistency::UpdateMethod;

trace::UpdateTrace property_trace(std::uint64_t seed) {
  trace::GameTraceConfig cfg;
  cfg.bursty = false;  // Section 4 regime: individually delivered updates
  cfg.pre_game_s = 15;
  cfg.period_s = 300;
  cfg.break_s = 120;
  cfg.post_game_s = 30;
  cfg.in_play_mean_gap_s = 14;
  util::Rng rng(seed);
  return trace::generate_game_trace(cfg, rng);
}

// ---------------------------------------------------------------------------
// Sweep 1: every (method x infrastructure) combination upholds the core
// engine invariants.
// ---------------------------------------------------------------------------

using Combo = std::tuple<UpdateMethod, InfrastructureKind>;

class MethodInfraProperty : public ::testing::TestWithParam<Combo> {};

TEST_P(MethodInfraProperty, InvariantsHold) {
  const auto [method, infra] = GetParam();
  core::ScenarioConfig sc;
  sc.server_count = 36;
  const auto scenario = core::build_scenario(sc);
  const auto game = property_trace(7);

  consistency::EngineConfig ec;
  ec.method.method = method;
  ec.method.server_ttl_s = 12.0;
  // Bound adaptive TTL growth and give deep multicast chains enough tail to
  // drain the final update through every layer.
  ec.method.adaptive_max_ttl_s = 40.0;
  ec.tail_s = 400.0;
  ec.infrastructure.kind = infra;
  ec.infrastructure.cluster_count = 9;
  ec.user_poll_period_s = 6.0;

  sim::Simulator simulator;
  consistency::UpdateEngine engine(simulator, *scenario.nodes, game, ec);
  engine.run();

  // Invariant 1: every server converges to the final version (there are
  // users on every server, so even Invalidation catches up).
  for (topology::NodeId s = 0; s < 36; ++s) {
    EXPECT_EQ(engine.recorder(s).current_version(), game.update_count())
        << "server " << s;
  }

  // Invariant 2: acquisition never precedes the origin update
  // (no time travel), for every server and version.
  trace::UpdateTrace shifted = [&] {
    std::vector<sim::SimTime> times;
    for (auto t : game.times()) times.push_back(t + ec.trace_offset_s);
    return trace::UpdateTrace(times);
  }();
  for (topology::NodeId s = 0; s < 36; ++s) {
    for (double len : engine.recorder(s).inconsistency_lengths(shifted)) {
      EXPECT_GE(len, 0.0);
    }
  }

  // Invariant 3: users never observe a version above the final one, and
  // serve_time >= request_time.
  const auto& logs = engine.user_logs();
  for (std::size_t u = 0; u < logs.user_count(); ++u) {
    for (const auto& obs : logs.log(static_cast<cdn::UserId>(u)).observations()) {
      EXPECT_LE(obs.version, game.update_count());
      EXPECT_GE(obs.serve_time, obs.request_time);
    }
  }

  // Invariant 4: traffic accounting is self-consistent.
  const auto totals = engine.meter().totals();
  EXPECT_GE(totals.cost_km_kb, 0.0);
  EXPECT_EQ(totals.total_messages(), totals.update_messages + totals.light_messages);
  if (method != UpdateMethod::kPush) {
    EXPECT_GT(totals.light_messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MethodInfraProperty,
    ::testing::Combine(::testing::Values(UpdateMethod::kTtl, UpdateMethod::kPush,
                                         UpdateMethod::kInvalidation,
                                         UpdateMethod::kAdaptiveTtl,
                                         UpdateMethod::kSelfAdaptive),
                       ::testing::Values(InfrastructureKind::kUnicast,
                                         InfrastructureKind::kMulticastTree,
                                         InfrastructureKind::kHybridSupernode)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::string(to_string(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Sweep 2: TTL/2 law across TTL values (Section 3.4.1's E[I] = TTL/2).
// ---------------------------------------------------------------------------

class TtlLawProperty : public ::testing::TestWithParam<double> {};

TEST_P(TtlLawProperty, MeanInconsistencyIsHalfTtl) {
  const double ttl = GetParam();
  core::ScenarioConfig sc;
  sc.server_count = 50;
  const auto scenario = core::build_scenario(sc);
  // Updates much sparser than the TTL so windows never overlap.
  std::vector<sim::SimTime> times;
  for (int i = 1; i <= 25; ++i) times.push_back(i * (3.0 * ttl + 7.0));
  const trace::UpdateTrace updates(times);

  consistency::EngineConfig ec;
  ec.method.method = UpdateMethod::kTtl;
  ec.method.server_ttl_s = ttl;
  ec.users_per_server = 1;
  const auto r = core::run_simulation(*scenario.nodes, updates, ec);
  EXPECT_NEAR(r.avg_server_inconsistency_s, ttl / 2.0, 0.15 * ttl + 0.6);
}

INSTANTIATE_TEST_SUITE_P(TtlSweep, TtlLawProperty,
                         ::testing::Values(4.0, 10.0, 20.0, 40.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "Ttl" + std::to_string(
                                              static_cast<int>(info.param));
                         });

// ---------------------------------------------------------------------------
// Sweep 3: determinism across seeds — different seeds change numbers,
// same seed reproduces them exactly, for every method.
// ---------------------------------------------------------------------------

class SeedProperty : public ::testing::TestWithParam<UpdateMethod> {};

TEST_P(SeedProperty, SameSeedReproducesDifferentSeedPerturbs) {
  const auto method = GetParam();
  core::ScenarioConfig sc;
  sc.server_count = 24;
  const auto scenario = core::build_scenario(sc);
  const auto game = property_trace(3);

  auto run_seed = [&](std::uint64_t seed) {
    consistency::EngineConfig ec;
    ec.method.method = method;
    ec.seed = seed;
    return core::run_simulation(*scenario.nodes, game, ec);
  };
  const auto a1 = run_seed(42);
  const auto a2 = run_seed(42);
  const auto b = run_seed(43);
  EXPECT_EQ(a1.avg_server_inconsistency_s, a2.avg_server_inconsistency_s);
  EXPECT_EQ(a1.events_processed, a2.events_processed);
  if (method != UpdateMethod::kPush) {
    // Push has no randomized polling phases; others must perturb.
    EXPECT_NE(a1.avg_server_inconsistency_s, b.avg_server_inconsistency_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty,
                         ::testing::Values(UpdateMethod::kTtl, UpdateMethod::kPush,
                                           UpdateMethod::kInvalidation,
                                           UpdateMethod::kSelfAdaptive),
                         [](const ::testing::TestParamInfo<UpdateMethod>& info) {
                           return std::string(to_string(info.param));
                         });

// ---------------------------------------------------------------------------
// Sweep 4: multicast fanout — deeper trees (smaller d) amplify TTL
// inconsistency monotonically.
// ---------------------------------------------------------------------------

class FanoutProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FanoutProperty, InconsistencyBoundedByDepthTimesTtl) {
  const std::size_t fanout = GetParam();
  core::ScenarioConfig sc;
  sc.server_count = 40;
  const auto scenario = core::build_scenario(sc);
  std::vector<sim::SimTime> times;
  for (int i = 1; i <= 10; ++i) times.push_back(i * 150.0);
  const trace::UpdateTrace updates(times);

  consistency::EngineConfig ec;
  ec.method.method = UpdateMethod::kTtl;
  ec.method.server_ttl_s = 8.0;
  ec.infrastructure.kind = InfrastructureKind::kMulticastTree;
  ec.infrastructure.tree_fanout = fanout;

  sim::Simulator simulator;
  consistency::UpdateEngine engine(simulator, *scenario.nodes, updates, ec);
  engine.run();
  const auto inc = engine.server_avg_inconsistency();
  const auto& infra = engine.infrastructure();
  for (topology::NodeId s = 0; s < 40; ++s) {
    const double depth = static_cast<double>(infra.depth_of(s));
    // A node at depth m sees at most ~m TTL windows of delay.
    EXPECT_LE(inc[static_cast<std::size_t>(s)], depth * 8.0 + 2.0)
        << "fanout " << fanout << " server " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutProperty, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "d" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Sweep 5: the headline orderings are not seed artifacts — they hold across
// scenario seeds, trace seeds, and engine seeds simultaneously.
// ---------------------------------------------------------------------------

class OrderingAcrossSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingAcrossSeeds, ConsistencyAndCostOrderingsHold) {
  const std::uint64_t seed = GetParam();
  core::ScenarioConfig sc;
  sc.server_count = 40;
  sc.seed = seed;
  const auto scenario = core::build_scenario(sc);
  const auto game = property_trace(seed ^ 0xbeef);

  auto run_method = [&](UpdateMethod m) {
    consistency::EngineConfig ec;
    ec.method.method = m;
    // TTL longer than the update gap: the aggregation regime in which the
    // paper's Fig. 22 message ordering (Invalidation > TTL) holds.
    ec.method.server_ttl_s = 40.0;
    ec.seed = seed + 1;
    return core::run_simulation(*scenario.nodes, game, ec);
  };
  const auto push = run_method(UpdateMethod::kPush);
  const auto inval = run_method(UpdateMethod::kInvalidation);
  const auto ttl = run_method(UpdateMethod::kTtl);

  // Fig. 14's consistency ordering.
  EXPECT_LT(push.avg_server_inconsistency_s, inval.avg_server_inconsistency_s);
  EXPECT_LT(inval.avg_server_inconsistency_s, ttl.avg_server_inconsistency_s);
  // Fig. 22's message ordering.
  EXPECT_GT(push.traffic.update_messages, inval.traffic.update_messages);
  EXPECT_GT(inval.traffic.update_messages, ttl.traffic.update_messages);
  // Fig. 16's cost ordering under frequent updates.
  EXPECT_LT(push.traffic.cost_km_kb, ttl.traffic.cost_km_kb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingAcrossSeeds,
                         ::testing::Values(11u, 222u, 3333u, 44444u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cdnsim
