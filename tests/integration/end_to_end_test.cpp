// Integration tests: whole-pipeline runs crossing every module boundary —
// scenario building, trace generation, the update engine on each
// infrastructure, and the Section 3 analysis over the produced logs.
#include <gtest/gtest.h>

#include "analysis/inconsistency.hpp"
#include "analysis/ttl_inference.hpp"
#include "analysis/user_metrics.hpp"
#include "core/measurement_study.hpp"
#include "core/simulation.hpp"
#include "trace/game_generator.hpp"
#include "util/stats.hpp"

namespace cdnsim {
namespace {

trace::UpdateTrace quick_game(std::uint64_t seed) {
  trace::GameTraceConfig cfg;
  cfg.pre_game_s = 20;
  cfg.period_s = 400;
  // Long silences relative to play: the regime the self-adaptive method is
  // designed for (Section 5.1).
  cfg.break_s = 600;
  cfg.post_game_s = 240;
  cfg.in_play_event_gap_s = 50;
  util::Rng rng(seed);
  return trace::generate_game_trace(cfg, rng);
}

TEST(EndToEndTest, PaperSection4OrderingAcrossAllSixSystems) {
  core::ScenarioConfig sc;
  sc.server_count = 60;
  const auto scenario = core::build_scenario(sc);
  const auto game = quick_game(1);

  struct System {
    consistency::UpdateMethod method;
    consistency::InfrastructureKind infra;
  };
  const System push{consistency::UpdateMethod::kPush,
                    consistency::InfrastructureKind::kUnicast};
  const System inval{consistency::UpdateMethod::kInvalidation,
                     consistency::InfrastructureKind::kUnicast};
  const System ttl{consistency::UpdateMethod::kTtl,
                   consistency::InfrastructureKind::kUnicast};
  const System self{consistency::UpdateMethod::kSelfAdaptive,
                    consistency::InfrastructureKind::kUnicast};
  const System hybrid{consistency::UpdateMethod::kTtl,
                      consistency::InfrastructureKind::kHybridSupernode};
  const System hat{consistency::UpdateMethod::kSelfAdaptive,
                   consistency::InfrastructureKind::kHybridSupernode};

  auto run_sys = [&](const System& s) {
    consistency::EngineConfig ec;
    ec.method.method = s.method;
    ec.method.server_ttl_s = 60.0;
    ec.infrastructure.kind = s.infra;
    ec.infrastructure.cluster_count = 12;
    ec.user_poll_period_s = 10.0;
    return core::run_simulation(*scenario.nodes, game, ec);
  };

  const auto r_push = run_sys(push);
  const auto r_inval = run_sys(inval);
  const auto r_ttl = run_sys(ttl);
  const auto r_self = run_sys(self);
  const auto r_hybrid = run_sys(hybrid);
  const auto r_hat = run_sys(hat);

  // Consistency ordering (Figs. 14-15).
  EXPECT_LT(r_push.avg_server_inconsistency_s, r_inval.avg_server_inconsistency_s);
  EXPECT_LT(r_inval.avg_server_inconsistency_s, r_ttl.avg_server_inconsistency_s);

  // Message ordering (Fig. 22a): Push > Invalidation > TTL ~ Hybrid > HAT > Self.
  EXPECT_GT(r_push.traffic.update_messages, r_inval.traffic.update_messages);
  EXPECT_GT(r_inval.traffic.update_messages, r_ttl.traffic.update_messages);
  EXPECT_GT(r_ttl.traffic.update_messages, r_self.traffic.update_messages);
  EXPECT_GT(r_hat.traffic.update_messages, r_self.traffic.update_messages);

  // Provider load (Fig. 22b): the hybrid systems offload the provider (the
  // provider pushes only to the <=4 supernode-tree roots).
  EXPECT_LT(r_hat.provider_traffic.update_messages,
            r_ttl.provider_traffic.update_messages / 3);
  EXPECT_LT(r_hybrid.provider_traffic.update_messages,
            r_ttl.provider_traffic.update_messages / 3);

  // Network load in km (Fig. 23): HAT lightest of the TTL-family systems.
  EXPECT_LT(r_hat.traffic.load_km_total(), r_ttl.traffic.load_km_total());
  EXPECT_LT(r_hat.traffic.load_km_total(), r_self.traffic.load_km_total());
}

TEST(EndToEndTest, AnalysisPipelineOverEngineLogs) {
  // Engine -> PollLog -> Section 3 analysis, checking TTL/2 theory.
  core::ScenarioConfig sc;
  sc.server_count = 80;
  const auto scenario = core::build_scenario(sc);
  const auto game = quick_game(2);

  consistency::EngineConfig ec;
  ec.method.method = consistency::UpdateMethod::kTtl;
  ec.method.server_ttl_s = 20.0;
  ec.users_per_server = 1;
  ec.user_poll_period_s = 5.0;
  ec.record_poll_log = true;

  sim::Simulator simulator;
  consistency::UpdateEngine engine(simulator, *scenario.nodes, game, ec);
  engine.run();

  const auto& log = engine.poll_log();
  ASSERT_GT(log.size(), 5000u);
  const analysis::SnapshotTimeline timeline(log);

  std::vector<double> lengths;
  for (net::NodeId s : log.servers()) {
    const auto server_lengths =
        analysis::server_inconsistency_lengths(log.for_server(s), timeline);
    lengths.insert(lengths.end(), server_lengths.begin(), server_lengths.end());
  }
  ASSERT_GT(lengths.size(), 500u);
  // Mean ~ TTL/2 with observation-quantisation slack.
  EXPECT_NEAR(util::mean(lengths), 10.0, 4.0);
  // And the TTL-inference pipeline recovers the polling TTL.
  const double inferred = analysis::infer_ttl(lengths);
  EXPECT_NEAR(inferred, 20.0, 6.0);
}

TEST(EndToEndTest, UserPerspectiveMatchesSection33Shape) {
  core::UserPerspectiveConfig cfg;
  cfg.base.scenario.server_count = 100;
  cfg.base.days = 1;
  cfg.base.game.period_s = 600;
  cfg.base.game.break_s = 150;
  cfg.base.game.pre_game_s = 20;
  cfg.base.game.post_game_s = 30;
  cfg.base.seed = 11;
  cfg.user_count = 50;
  const auto r = core::run_user_perspective_study(cfg);

  // Continuous inconsistency runs are short (70% <= ~1 visit period in the
  // paper); consistency runs are much longer.
  ASSERT_FALSE(r.continuous_inconsistency.empty());
  ASSERT_FALSE(r.continuous_consistency.empty());
  EXPECT_LT(util::mean(r.continuous_inconsistency),
            util::mean(r.continuous_consistency));
}

TEST(EndToEndTest, PushHybridBeatsUnicastPushAtScaleOnProviderLoad) {
  core::ScenarioConfig sc;
  sc.server_count = 150;
  const auto scenario = core::build_scenario(sc);
  const auto game = quick_game(3);

  consistency::EngineConfig unicast;
  unicast.method.method = consistency::UpdateMethod::kPush;
  unicast.update_packet_kb = 100.0;

  consistency::EngineConfig hybrid = unicast;
  hybrid.infrastructure.kind = consistency::InfrastructureKind::kHybridSupernode;
  hybrid.infrastructure.cluster_count = 20;

  const auto ru = core::run_simulation(*scenario.nodes, game, unicast);
  const auto rh = core::run_simulation(*scenario.nodes, game, hybrid);
  // Supernode overlay bounds provider fanout: lower inconsistency under
  // large packets, far less provider traffic.
  EXPECT_LT(rh.avg_server_inconsistency_s, ru.avg_server_inconsistency_s);
  EXPECT_LT(rh.provider_traffic.update_messages,
            ru.provider_traffic.update_messages / 10);
}

}  // namespace
}  // namespace cdnsim
