// Property suite for src/fault (ISSUE 5):
//  (a) an enabled FaultPlan with every rate at zero is byte-identical to an
//      injector-free run;
//  (b) fault-enabled batch runs are byte-identical for any thread count;
//  (c) retry-budget exhaustion opens an inconsistency window that the
//      Section 3 analysis pipeline measures.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/inconsistency.hpp"
#include "core/batch_runner.hpp"
#include "core/simulation.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "net/uplink.hpp"
#include "util/error.hpp"

#include "../consistency/engine_test_util.hpp"

namespace cdnsim {
namespace {

using consistency::EngineConfig;
using consistency::InfrastructureKind;
using consistency::UpdateMethod;
using core::BatchJob;
using core::BatchResult;
using core::BatchRunner;
using core::SimulationResult;
namespace testutil = consistency::testutil;

// ---------------------------------------------------------------------------
// FaultPlan / Injector units
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ValidateRejectsBadValues) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.validate();  // all-zero plan is valid

  fault::FaultPlan bad = plan;
  bad.loss_probability = 1.5;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = plan;
  bad.duplicate_probability = -0.1;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = plan;
  bad.extra_delay_max_s = -1;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = plan;
  bad.partitions.push_back({0, 1, 50, 50});
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = plan;
  bad.brownouts.push_back({0, 10, 20, 0.0});
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = plan;
  bad.link_overrides.push_back({0, 1, 2.0, 0, 0});
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST(FaultInjectorTest, ZeroRatePlanMakesNoDraws) {
  const auto scenario = testutil::small_scenario(10);
  fault::FaultPlan plan;
  plan.enabled = true;
  fault::Injector a(plan, *scenario.nodes, 7);
  fault::Injector b(plan, *scenario.nodes, 7);
  // A zero-rate decide() consumes no RNG: interleaving extra decides on one
  // injector cannot diverge the pair.
  for (int i = 0; i < 100; ++i) {
    const auto d = a.decide(0, 1, i);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay_s, 0.0);
  }
  EXPECT_EQ(a.losses(), 0u);
  EXPECT_EQ(b.losses(), 0u);
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  const auto scenario = testutil::small_scenario(10);
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.loss_probability = 0.3;
  plan.duplicate_probability = 0.2;
  plan.extra_delay_max_s = 0.5;
  fault::Injector a(plan, *scenario.nodes, 7);
  fault::Injector b(plan, *scenario.nodes, 7);
  for (int i = 0; i < 500; ++i) {
    const auto da = a.decide(i % 5, (i + 1) % 5, i);
    const auto db = b.decide(i % 5, (i + 1) % 5, i);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.extra_delay_s, db.extra_delay_s);
    EXPECT_EQ(da.duplicate_extra_delay_s, db.duplicate_extra_delay_s);
  }
  EXPECT_GT(a.losses(), 0u);
  EXPECT_GT(a.duplicates(), 0u);
  EXPECT_EQ(a.losses(), b.losses());
}

TEST(FaultInjectorTest, PartitionDropsAreDeterministicAndWindowed) {
  // Two ISPs: servers 0..4 in ISP of site, we instead build a registry by
  // hand so the ISP split is exact.
  topology::NodeRegistry nodes({net::GeoPoint{0, 0}, 0});
  for (int i = 0; i < 4; ++i) {
    nodes.add_server({net::GeoPoint{1.0 * i, 0}, i % 2});
  }
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.partitions.push_back({0, 1, 10.0, 20.0});
  fault::Injector inj(plan, nodes, 1);
  // Cross-ISP pair inside the window: always dropped, no randomness.
  EXPECT_TRUE(inj.decide(0, 1, 15.0).drop);
  EXPECT_TRUE(inj.decide(0, 1, 15.0).partitioned);
  EXPECT_TRUE(inj.decide(1, 0, 10.0).drop);  // bidirectional, start inclusive
  EXPECT_FALSE(inj.decide(0, 1, 20.0).drop);  // end exclusive
  EXPECT_FALSE(inj.decide(0, 2, 15.0).drop);  // same ISP
  EXPECT_FALSE(inj.decide(0, 1, 5.0).drop);   // before window
  EXPECT_EQ(inj.partition_drops(), 3u);
}

TEST(UplinkTest, BandwidthScaleAffectsOnlyFutureReservations) {
  net::Uplink up(100.0);  // 100 KB/s
  EXPECT_DOUBLE_EQ(up.reserve(0, 100), 1.0);
  up.set_bandwidth_scale(0.5);
  EXPECT_DOUBLE_EQ(up.reserve(1.0, 100), 3.0);  // 100 KB at 50 KB/s
  up.set_bandwidth_scale(1.0);
  EXPECT_DOUBLE_EQ(up.reserve(3.0, 100), 4.0);
  EXPECT_THROW(up.set_bandwidth_scale(0.0), PreconditionError);
}

// ---------------------------------------------------------------------------
// (a) zero-rate plan == no plan, byte for byte
// ---------------------------------------------------------------------------

void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.server_inconsistency_s, b.server_inconsistency_s);
  ASSERT_EQ(a.user_inconsistency_s, b.user_inconsistency_s);
  ASSERT_EQ(a.avg_server_inconsistency_s, b.avg_server_inconsistency_s);
  ASSERT_EQ(a.avg_user_inconsistency_s, b.avg_user_inconsistency_s);
  ASSERT_EQ(a.traffic.cost_km_kb, b.traffic.cost_km_kb);
  ASSERT_EQ(a.traffic.update_messages, b.traffic.update_messages);
  ASSERT_EQ(a.traffic.light_messages, b.traffic.light_messages);
  ASSERT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.simulated_time_s, b.simulated_time_s);
  ASSERT_EQ(a.converged_server_fraction, b.converged_server_fraction);
  ASSERT_EQ(a.metrics.to_json(), b.metrics.to_json());
}

TEST(FaultInjectionProperty, ZeroRatePlanIsByteIdenticalToNoPlan) {
  const auto scenario = testutil::small_scenario(20, 424242);
  const auto trace = testutil::regular_trace(8.0, 12);
  const UpdateMethod methods[] = {UpdateMethod::kTtl, UpdateMethod::kPush,
                                  UpdateMethod::kInvalidation,
                                  UpdateMethod::kSelfAdaptive};
  for (const auto m : methods) {
    EngineConfig base = testutil::base_config(m);
    const auto plain = core::run_simulation(*scenario.nodes, trace, base);

    EngineConfig zero = base;
    zero.fault.enabled = true;  // all rates zero, no partitions/brownouts
    const auto injected = core::run_simulation(*scenario.nodes, trace, zero);
    expect_identical(plain, injected,
                     std::string("zero-rate ") +
                         std::string(consistency::to_string(m)));
  }
}

// ---------------------------------------------------------------------------
// (b) fault-enabled runs are byte-identical across --jobs
// ---------------------------------------------------------------------------

std::vector<BatchJob> faulty_grid() {
  const UpdateMethod methods[] = {UpdateMethod::kTtl, UpdateMethod::kPush,
                                  UpdateMethod::kInvalidation};
  std::vector<BatchJob> jobs;
  for (const auto m : methods) {
    for (const bool reliable : {false, true}) {
      BatchJob job;
      core::ScenarioConfig sc;
      sc.server_count = 20;
      sc.seed = 11;
      job.scenario = sc;
      trace::GameTraceConfig game;
      game.bursty = false;
      game.pre_game_s = 20;
      game.periods = 1;
      game.period_s = 200;
      game.break_s = 0;
      game.post_game_s = 30;
      game.in_play_mean_gap_s = 12;
      job.game = game;
      job.engine = testutil::base_config(m);
      job.engine.fault.enabled = true;
      job.engine.fault.loss_probability = 0.15;
      job.engine.fault.duplicate_probability = 0.05;
      job.engine.fault.extra_delay_max_s = 0.25;
      job.engine.fault.brownouts.push_back({0, 50.0, 120.0, 0.25});
      job.engine.reliable.enabled = reliable;
      job.label = std::string(consistency::to_string(m)) +
                  (reliable ? "/reliable" : "/fire-and-forget");
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(FaultInjectionProperty, FaultyRunsAreByteIdenticalAcrossJobCounts) {
  const auto jobs = faulty_grid();
  const BatchRunner serial({.threads = 1, .master_seed = 99});
  const BatchRunner parallel({.threads = 8, .master_seed = 99});
  const auto a = serial.run(jobs);
  const auto b = parallel.run(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << a[i].error;
    ASSERT_TRUE(b[i].ok()) << b[i].error;
    expect_identical(a[i].sim, b[i].sim, jobs[i].label);
    // The faults actually fired (otherwise the property is vacuous).
    obs::MetricsRegistry m = a[i].sim.metrics;
    EXPECT_GT(m.counter("fault.messages_dropped").value, 0u) << jobs[i].label;
    EXPECT_GT(m.counter("fault.brownout_transitions").value, 0u)
        << jobs[i].label;
  }
}

// ---------------------------------------------------------------------------
// Reliable delivery semantics
// ---------------------------------------------------------------------------

TEST(ReliableDelivery, RetriesRecoverPushConsistencyAtATrafficCost) {
  const auto scenario = testutil::small_scenario(20);
  const auto trace = testutil::regular_trace(10.0, 10);

  EngineConfig lossless = testutil::base_config(UpdateMethod::kPush);
  const auto baseline = core::run_simulation(*scenario.nodes, trace, lossless);

  EngineConfig lossy = lossless;
  lossy.fault.enabled = true;
  lossy.fault.loss_probability = 0.3;
  const auto dropped = core::run_simulation(*scenario.nodes, trace, lossy);

  EngineConfig retried = lossy;
  retried.reliable.enabled = true;
  const auto recovered = core::run_simulation(*scenario.nodes, trace, retried);

  // Without retries, lost pushes strand replicas on old versions.
  EXPECT_GT(dropped.avg_server_inconsistency_s,
            2.0 * baseline.avg_server_inconsistency_s);
  EXPECT_LT(dropped.converged_server_fraction, 1.0);
  // Retries restore consistency to near-baseline…
  EXPECT_LT(recovered.avg_server_inconsistency_s,
            baseline.avg_server_inconsistency_s + 2.0);
  EXPECT_DOUBLE_EQ(recovered.converged_server_fraction, 1.0);
  // …and the recovery is paid in messages (retransmissions + acks).
  EXPECT_GT(recovered.traffic.update_messages, dropped.traffic.update_messages);
  obs::MetricsRegistry m = recovered.metrics;
  EXPECT_GT(m.counter("reliable.retries").value, 0u);
  EXPECT_GT(m.gauge("net.messages.ack").value, 0.0);
}

TEST(ReliableDelivery, AckTimeoutValidation) {
  const auto scenario = testutil::small_scenario(5);
  const auto trace = testutil::regular_trace(10.0, 2);
  EngineConfig bad = testutil::base_config(UpdateMethod::kPush);
  bad.reliable.enabled = true;
  bad.reliable.ack_timeout_s = 0;
  EXPECT_THROW(core::run_simulation(*scenario.nodes, trace, bad),
               PreconditionError);
  bad.reliable.ack_timeout_s = 1.0;
  bad.reliable.backoff_factor = 0.5;
  EXPECT_THROW(core::run_simulation(*scenario.nodes, trace, bad),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// (c) retry-budget exhaustion opens a measurable inconsistency window
// ---------------------------------------------------------------------------

TEST(ReliableDelivery, GiveUpOpensInconsistencyWindowAnalysisCanMeasure) {
  // Provider and server 0 in ISP 0; server 1 alone in ISP 1 and partitioned
  // away for the entire run, so every push (and every retry) to it dies.
  topology::NodeRegistry nodes({net::GeoPoint{0, 0}, 0});
  nodes.add_server({net::GeoPoint{1, 1}, 0});
  nodes.add_server({net::GeoPoint{2, 2}, 1});

  const auto trace = testutil::regular_trace(10.0, 5);
  EngineConfig cfg = testutil::base_config(UpdateMethod::kPush);
  cfg.record_poll_log = true;
  cfg.fault.enabled = true;
  cfg.fault.partitions.push_back({0, 1, 0.0, 1e9});
  cfg.reliable.enabled = true;
  cfg.reliable.ack_timeout_s = 1.0;
  cfg.reliable.max_retries = 2;

  const auto run = testutil::run(nodes, trace, cfg);
  obs::MetricsRegistry m = run->engine->metrics();
  EXPECT_GT(m.counter("reliable.retries").value, 0u);
  EXPECT_GE(m.counter("reliable.give_ups").value, 5u);  // one per update

  // Ground-truth timeline; the victim's poll observations never advance, so
  // the analysis pipeline reports a wide-open window while the connected
  // server stays tight.
  const analysis::SnapshotTimeline timeline(trace, cfg.trace_offset_s);
  const auto& log = run->engine->poll_log();
  const auto victim =
      analysis::server_inconsistency_lengths(log.for_server(1), timeline);
  const auto healthy =
      analysis::server_inconsistency_lengths(log.for_server(0), timeline);
  double victim_total = 0;
  for (const double w : victim) victim_total += w;
  double healthy_total = 0;
  for (const double w : healthy) healthy_total += w;
  EXPECT_GT(victim_total, 30.0) << "partitioned server should stay stale";
  EXPECT_LT(healthy_total, victim_total / 4);
}

}  // namespace
}  // namespace cdnsim
