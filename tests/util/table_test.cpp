#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace cdnsim::util {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row(std::vector<std::string>{"a", "1"});
  t.add_row(std::vector<std::string>{"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row(std::vector<std::string>{"only-one"}), cdnsim::PreconditionError);
}

TEST(TextTableTest, DoubleRowsUsePrecision) {
  TextTable t({"x"});
  t.add_row(std::vector<double>{1.23456}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_EQ(os.str().find("1.2345"), std::string::npos);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 3), "2.000");
}

TEST(ShapeCheckTest, AllPassing) {
  ShapeCheck check("fig-test");
  check.expect_less(1, 2, "one below two");
  check.expect_greater(3, 2, "three above two");
  check.expect_near(10, 10.5, 0.1, "close enough");
  check.expect_in_range(5, 0, 10, "in range");
  EXPECT_TRUE(check.all_passed());
  EXPECT_EQ(check.failures(), 0);
  std::ostringstream os;
  check.print(os);
  EXPECT_NE(os.str().find("4/4 PASS"), std::string::npos);
}

TEST(ShapeCheckTest, FailureIsReported) {
  ShapeCheck check("fig-test");
  check.expect_less(5, 2, "impossible");
  EXPECT_FALSE(check.all_passed());
  std::ostringstream os;
  check.print(os);
  EXPECT_NE(os.str().find("FAIL"), std::string::npos);
  EXPECT_NE(os.str().find("impossible"), std::string::npos);
}

TEST(ShapeCheckTest, NearRespectsRelativeTolerance) {
  ShapeCheck check("fig-test");
  check.expect_near(100, 115, 0.10, "too far");
  EXPECT_EQ(check.failures(), 1);
  check.expect_near(100, 109, 0.10, "close");
  EXPECT_EQ(check.failures(), 1);
}

TEST(ShapeCheckTest, RangeBoundsInclusive) {
  ShapeCheck check("fig-test");
  check.expect_in_range(0, 0, 10, "lower edge");
  check.expect_in_range(10, 0, 10, "upper edge");
  EXPECT_TRUE(check.all_passed());
}

}  // namespace
}  // namespace cdnsim::util
