#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cdnsim::util {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 4.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, NormalZeroStddevIsDeterministic) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.normal(42.0, 0.0), 42.0);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequencyNearProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ForkedStreamsAreIndependentOfEachOther) {
  Rng parent(100);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.uniform(0, 1) == child2.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SuccessiveForksWithSameTagDiffer) {
  Rng parent(100);
  Rng a = parent.fork(7);
  Rng b = parent.fork(7);
  EXPECT_NE(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(RngTest, SubstreamIsStatelessAndRepeatable) {
  Rng parent(100);
  // Unlike fork(), asking for the same substream twice yields the same
  // stream, regardless of how much parent state was consumed in between.
  Rng a = parent.substream(7);
  for (int i = 0; i < 50; ++i) parent.uniform(0, 1);
  Rng b = parent.substream(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, SubstreamDoesNotPerturbParent) {
  Rng with(5), without(5);
  (void)with.substream(1);
  (void)with.substream(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(with.uniform(0, 1), without.uniform(0, 1));
  }
}

TEST(RngTest, SubstreamsWithDistinctIndicesDiffer) {
  Rng parent(100);
  Rng a = parent.substream(0);
  Rng b = parent.substream(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SubstreamMatchesSubstreamSeed) {
  Rng parent(2014);
  Rng via_member = parent.substream(3);
  Rng via_seed(substream_seed(2014, 3));
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(via_member.uniform(0, 1), via_seed.uniform(0, 1));
  }
}

TEST(RngTest, SubstreamSeedAvoidsTrivialCollisions) {
  // Nearby (master, index) pairs must not collide — the batch runner maps
  // job index k of master seed m to substream_seed(m, k).
  std::set<std::uint64_t> seeds;
  for (std::uint64_t m = 0; m < 20; ++m) {
    for (std::uint64_t k = 0; k < 20; ++k) {
      seeds.insert(substream_seed(m, k));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);
}

TEST(RngTest, PickReturnsElementFromVector) {
  Rng rng(1);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(RngTest, PickFromEmptyThrows) {
  Rng rng(1);
  const std::vector<int> v;
  EXPECT_THROW(rng.pick(v), PreconditionError);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(2);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2, 1), PreconditionError);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
  EXPECT_THROW(rng.exponential(0), PreconditionError);
  EXPECT_THROW(rng.normal(0, -1), PreconditionError);
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
  EXPECT_THROW(rng.index(0), PreconditionError);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(2.7, 0.8), 0.0);
  }
}

}  // namespace
}  // namespace cdnsim::util
