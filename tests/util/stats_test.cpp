#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace cdnsim::util {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(StatsTest, MeanBasic) { EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5); }

TEST(StatsTest, VarianceConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(variance({5, 5, 5}), 0.0);
}

TEST(StatsTest, VarianceKnownValue) {
  // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
  EXPECT_DOUBLE_EQ(variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(StatsTest, MinMaxSum) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1);
  EXPECT_DOUBLE_EQ(max_of(xs), 7);
  EXPECT_DOUBLE_EQ(sum(xs), 11);
}

TEST(StatsTest, MinMaxOfEmptyThrows) {
  EXPECT_THROW(min_of({}), PreconditionError);
  EXPECT_THROW(max_of({}), PreconditionError);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
}

TEST(StatsTest, PercentileMedianOddCount) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 0.5), 3.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({40, 10, 30, 20}, 1.0), 40);
}

TEST(StatsTest, PercentileInvalidInputsThrow) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 1.5), PreconditionError);
}

TEST(StatsTest, RmseIdenticalSeriesIsZero) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, RmseKnownValue) {
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
}

TEST(StatsTest, RmseSizeMismatchThrows) {
  EXPECT_THROW(rmse({1}, {1, 2}), PreconditionError);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(StatsTest, AccumulatorTracksMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 4.0, 1e-9);
}

TEST(StatsTest, AccumulatorEmpty) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_THROW(acc.min(), PreconditionError);
}

}  // namespace
}  // namespace cdnsim::util
