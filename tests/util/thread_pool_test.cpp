#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace cdnsim::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, EachTaskWritesItsOwnSlot) {
  ThreadPool pool(8);
  std::vector<int> slots(500, -1);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    pool.submit([&slots, i] { slots[i] = static_cast<int>(i) * 2; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPoolTest, StealingBalancesUnevenTasks) {
  // One long task dealt to worker 0 must not serialise the 30 short ones
  // dealt round-robin behind it: with stealing, the batch finishes in
  // roughly the long task's time.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    done.fetch_add(1);
  });
  for (int i = 0; i < 30; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 31);
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SubmitAfterWaitIdleWorks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // no wait_idle(): destruction must drain, not drop.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.thread_count(), ThreadPool::hardware_threads());
}

TEST(ThreadPoolTest, NullTaskIsRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(ThreadPool::Task{}), PreconditionError);
}

}  // namespace
}  // namespace cdnsim::util
