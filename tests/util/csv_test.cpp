#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace cdnsim::util {
namespace {

TEST(CsvTest, WriterProducesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row(std::vector<std::string>{"1", "x"});
  w.row(std::vector<double>{2.5, 3.0});
  EXPECT_EQ(os.str(), "a,b\n1,x\n2.5,3\n");
}

TEST(CsvTest, SplitBasic) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvTest, SplitEmptyFields) {
  const auto f = split_csv_line("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(CsvTest, SplitQuotedField) {
  const auto f = split_csv_line(R"(a,"b,c",d)");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b,c");
}

TEST(CsvTest, SplitEscapedQuote) {
  const auto f = split_csv_line(R"("say ""hi""",x)");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(CsvTest, SplitStripsCarriageReturn) {
  const auto f = split_csv_line("a,b\r");
  EXPECT_EQ(f[1], "b");
}

TEST(CsvTest, ReadCsvSkipsEmptyLines) {
  std::istringstream in("h1,h2\n\n1,2\n\n3,4\n");
  const auto table = read_csv(in);
  EXPECT_EQ(table.header, (std::vector<std::string>{"h1", "h2"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cdnsim_csv_test.csv";
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  write_csv_file(path, table);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.header, table.header);
  EXPECT_EQ(loaded.rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), Error);
}

}  // namespace
}  // namespace cdnsim::util
