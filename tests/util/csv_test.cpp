#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "util/error.hpp"

namespace cdnsim::util {
namespace {

TEST(CsvTest, WriterProducesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row(std::vector<std::string>{"1", "x"});
  w.row(std::vector<double>{2.5, 3.0});
  EXPECT_EQ(os.str(), "a,b\n1,x\n2.5,3\n");
}

TEST(CsvTest, SplitBasic) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvTest, SplitEmptyFields) {
  const auto f = split_csv_line("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(CsvTest, SplitQuotedField) {
  const auto f = split_csv_line(R"(a,"b,c",d)");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b,c");
}

TEST(CsvTest, SplitEscapedQuote) {
  const auto f = split_csv_line(R"("say ""hi""",x)");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(CsvTest, SplitStripsCarriageReturn) {
  const auto f = split_csv_line("a,b\r");
  EXPECT_EQ(f[1], "b");
}

TEST(CsvTest, ReadCsvPreservesInteriorEmptyLines) {
  // RFC 4180: an empty line is a record with one empty field. Only the
  // final trailing newline is not a record. (The old reader silently
  // dropped empty lines, which broke write->read round-trips of rows
  // whose single field is "".)
  std::istringstream in("h1,h2\n\n1,2\n\n3,4\n");
  const auto table = read_csv(in);
  EXPECT_EQ(table.header, (std::vector<std::string>{"h1", "h2"}));
  ASSERT_EQ(table.rows.size(), 4u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{""}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(table.rows[2], (std::vector<std::string>{""}));
  EXPECT_EQ(table.rows[3], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, ReadCsvTrailingNewlineIsNotARecord) {
  std::istringstream with_nl("h\na\n");
  std::istringstream without_nl("h\na");
  EXPECT_EQ(read_csv(with_nl).rows.size(), 1u);
  EXPECT_EQ(read_csv(without_nl).rows.size(), 1u);
}

TEST(CsvTest, WriterQuotesSpecialFields) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row(std::vector<std::string>{"plain", "with,comma", "with\"quote",
                                 "with\nnewline"});
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvTest, WriteReadRoundTripWithSpecialCharacters) {
  // The bug this PR fixes: row() used to join fields verbatim, so a field
  // containing a comma or quote produced a file read_csv() mis-split.
  CsvTable table;
  table.header = {"label", "config"};
  table.rows = {
      {"unicast/850/Push", "unicast,850,Push"},
      {"say \"hi\"", "a\nb"},
      {"", ","},
      {"trailing space ", "\ttab"},
  };
  std::ostringstream os;
  CsvWriter w(os);
  w.header(table.header);
  for (const auto& r : table.rows) w.row(r);
  std::istringstream is(os.str());
  const auto loaded = read_csv(is);
  EXPECT_EQ(loaded.header, table.header);
  EXPECT_EQ(loaded.rows, table.rows);
}

TEST(CsvTest, DoubleRowsRoundTripAtFullPrecision) {
  // row(vector<double>) used to print with default ostream precision
  // (6 significant digits), silently truncating; it now uses
  // std::to_chars shortest-round-trip formatting.
  const std::vector<double> values{1.0 / 3.0,
                                   0.1,
                                   123456789.123456789,
                                   6.62607015e-34,
                                   -0.0,
                                   42.0};
  std::ostringstream os;
  CsvWriter w(os);
  w.row(values);
  std::istringstream is(os.str());
  const auto fields = split_csv_line([&] {
    std::string line;
    std::getline(is, line);
    return line;
  }());
  ASSERT_EQ(fields.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::stod(fields[i]), values[i]) << "field " << i << " = '"
                                               << fields[i] << "'";
  }
}

TEST(CsvTest, FormatDoubleIsShortest) {
  EXPECT_EQ(format_double(42.0), "42");
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(1.0 / 3.0), "0.3333333333333333");
}

TEST(CsvTest, RandomizedRoundTripProperty) {
  // Property test: any table of printable-ish fields survives a
  // write->read round trip, including fields full of CSV metacharacters.
  std::mt19937_64 rng(20140707);
  const std::string alphabet = "ab,\"\n\r x";
  for (int iter = 0; iter < 50; ++iter) {
    CsvTable table;
    const std::size_t cols = 1 + rng() % 4;
    for (std::size_t c = 0; c < cols; ++c) {
      table.header.push_back("c" + std::to_string(c));
    }
    const std::size_t rows = 1 + rng() % 6;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < cols; ++c) {
        std::string field;
        const std::size_t len = rng() % 8;
        for (std::size_t k = 0; k < len; ++k) {
          field.push_back(alphabet[rng() % alphabet.size()]);
        }
        // A lone "\r" field would round-trip as "" (the writer quotes it,
        // but a bare CR outside quotes is eaten as a line ending by
        // readers); our writer quotes CR fields so this is fine — keep it.
        row.push_back(std::move(field));
      }
      table.rows.push_back(std::move(row));
    }
    std::ostringstream os;
    CsvWriter w(os);
    w.header(table.header);
    for (const auto& r : table.rows) w.row(r);
    std::istringstream is(os.str());
    const auto loaded = read_csv(is);
    EXPECT_EQ(loaded.header, table.header) << "iter " << iter;
    EXPECT_EQ(loaded.rows, table.rows) << "iter " << iter;
  }
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cdnsim_csv_test.csv";
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  write_csv_file(path, table);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.header, table.header);
  EXPECT_EQ(loaded.rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), Error);
}

}  // namespace
}  // namespace cdnsim::util
