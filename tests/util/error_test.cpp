#include "util/error.hpp"

#include <gtest/gtest.h>

namespace cdnsim {
namespace {

TEST(ErrorTest, ExpectsPassesWhenConditionHolds) {
  EXPECT_NO_THROW(CDNSIM_EXPECTS(1 + 1 == 2, "arithmetic"));
}

TEST(ErrorTest, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(CDNSIM_EXPECTS(false, "must fail"), PreconditionError);
}

TEST(ErrorTest, ExpectsMessageContainsContext) {
  try {
    CDNSIM_EXPECTS(2 > 3, "two exceeds three");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two exceeds three"), std::string::npos);
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, RuntimeErrorCarriesMessage) {
  const Error e("disk on fire");
  EXPECT_STREQ(e.what(), "disk on fire");
}

TEST(ErrorTest, PreconditionErrorIsLogicError) {
  EXPECT_THROW(throw PreconditionError("x"), std::logic_error);
}

TEST(ErrorTest, ErrorIsRuntimeError) {
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

}  // namespace
}  // namespace cdnsim
