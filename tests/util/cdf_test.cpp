#include "util/cdf.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cdnsim::util {
namespace {

TEST(CdfTest, FractionAtOrBelow) {
  const Cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(4), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(99), 1.0);
}

TEST(CdfTest, EmptyCdfBehaviour) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.0);
  EXPECT_THROW(cdf.value_at_quantile(0.5), PreconditionError);
  EXPECT_TRUE(cdf.points(5).empty());
}

TEST(CdfTest, AddThenQuery) {
  Cdf cdf;
  cdf.add(5);
  cdf.add(1);
  cdf.add(3);
  cdf.finalize();
  EXPECT_DOUBLE_EQ(cdf.min(), 1);
  EXPECT_DOUBLE_EQ(cdf.max(), 5);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3);
  EXPECT_DOUBLE_EQ(cdf.value_at_quantile(0.5), 3);
}

TEST(CdfTest, QuantileRoundTripsFraction) {
  Rng rng(17);
  Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.uniform(0, 100));
  cdf.finalize();
  for (double q : {0.1, 0.25, 0.5, 0.9}) {
    const double v = cdf.value_at_quantile(q);
    EXPECT_NEAR(cdf.fraction_at_or_below(v), q, 0.01);
  }
}

TEST(CdfTest, PointsAreMonotone) {
  Rng rng(23);
  Cdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(rng.exponential(10));
  cdf.finalize();
  const auto pts = cdf.points(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GE(pts[i].cdf, pts[i - 1].cdf);
  }
  EXPECT_DOUBLE_EQ(pts.back().cdf, 1.0);
}

TEST(CdfTest, PointsAtExplicitPositions) {
  const Cdf cdf({1, 2, 3, 4});
  const auto pts = cdf.points_at({0.5, 2.0, 10.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].cdf, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].cdf, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].cdf, 1.0);
}

TEST(CdfTest, UniformSampleLooksLinear) {
  Rng rng(31);
  Cdf cdf;
  for (int i = 0; i < 20000; ++i) cdf.add(rng.uniform(0, 60));
  cdf.finalize();
  // CDF at x should be ~x/60 — the paper's Section 3.4.1 linearity check.
  for (double x : {6.0, 18.0, 30.0, 48.0}) {
    EXPECT_NEAR(cdf.fraction_at_or_below(x), x / 60.0, 0.015);
  }
}

TEST(CdfTest, UnfinalizedReadThrows) {
  Cdf cdf({1, 2, 3});            // vector ctor finalizes
  EXPECT_TRUE(cdf.finalized());
  EXPECT_DOUBLE_EQ(cdf.value_at_quantile(0.5), 2);
  cdf.add(0.5);                  // invalidates the sort
  EXPECT_FALSE(cdf.finalized());
  EXPECT_THROW(cdf.value_at_quantile(0.5), PreconditionError);
  EXPECT_THROW(cdf.fraction_at_or_below(1.0), PreconditionError);
  EXPECT_THROW(cdf.sorted_samples(), PreconditionError);
  EXPECT_DOUBLE_EQ(cdf.mean(), 1.625);  // mean never needs the sort
  cdf.finalize();
  EXPECT_DOUBLE_EQ(cdf.min(), 0.5);
}

// Regression for the lazy-sort race: a finalized const Cdf must be safely
// readable from many threads at once. Before the fix, sorted_samples()
// const_cast-sorted on first read, so concurrent first reads raced (and
// TSan flags it). Run under CDNSIM_SANITIZE=thread to verify.
TEST(CdfTest, ConcurrentReadsOnSharedConstCdf) {
  Rng rng(47);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.uniform(0, 60));
  const Cdf cdf(std::move(samples));

  constexpr int kThreads = 8;
  std::vector<double> got(kThreads, 0.0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&cdf, &got, t] {
        double acc = 0;
        for (double q : {0.1, 0.5, 0.9}) acc += cdf.value_at_quantile(q);
        acc += cdf.fraction_at_or_below(30.0);
        acc += cdf.points(16).back().cdf;
        got[static_cast<std::size_t>(t)] = acc;
      });
    }
    for (auto& w : workers) w.join();
  }
  for (int t = 1; t < kThreads; ++t) EXPECT_DOUBLE_EQ(got[0], got[t]);
}

}  // namespace
}  // namespace cdnsim::util
