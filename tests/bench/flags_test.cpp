// Regression tests for the bench flag parser: Flags::get/get_int used bare
// std::stod/std::stoll, so `--users 1e2x` silently parsed as 100 and
// `--users abc` died with an uncaught std::invalid_argument. Malformed
// values are now a usage error (exit 2) naming the offending flag.
#include "../../bench/bench_common.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cdnsim::bench {
namespace {

/// Builds a Flags from `--key value` strings (argv[0] is synthesized).
Flags make_flags(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string program = "bench";
  argv.push_back(program.data());
  for (std::string& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParseNumberRejectsGarbageAndAcceptsWholeTokens) {
  double d = 0;
  EXPECT_TRUE(parse_number("1.5", d));
  EXPECT_EQ(d, 1.5);
  EXPECT_FALSE(parse_number("", d));
  EXPECT_FALSE(parse_number("abc", d));
  EXPECT_FALSE(parse_number("1.5x", d));  // trailing garbage
  std::int64_t i = 0;
  EXPECT_TRUE(parse_number("42", i));
  EXPECT_EQ(i, 42);
  EXPECT_FALSE(parse_number("42.5", i));
  EXPECT_FALSE(parse_number("0x10", i));
}

TEST(FlagsTest, WellFormedValuesParse) {
  const Flags f = make_flags({"--users", "12", "--heartbeat", "2.5",
                              "--shards", "auto", "--epoch-s", "3"});
  EXPECT_EQ(f.get_int("users", 0), 12);
  EXPECT_EQ(f.get("heartbeat", 0.0), 2.5);
  EXPECT_EQ(f.shards(1), consistency::EngineConfig::ShardConfig::kAuto);
  EXPECT_EQ(f.epoch_s(1.0), 3.0);
  // Absent keys fall back.
  EXPECT_EQ(f.get_int("days", 15), 15);
  EXPECT_EQ(f.get("rate", 0.25), 0.25);
}

TEST(FlagsDeathTest, GetExitsTwoNamingTheMalformedFlag) {
  const Flags f = make_flags({"--heartbeat", "soon"});
  EXPECT_EXIT(f.get("heartbeat", 0.0), ::testing::ExitedWithCode(2),
              "--heartbeat expects a number, got 'soon'");
}

TEST(FlagsDeathTest, GetRejectsTrailingGarbage) {
  // The silent-truncation case: stod would have returned 100.
  const Flags f = make_flags({"--users", "1e2x"});
  EXPECT_EXIT(f.get("users", 0.0), ::testing::ExitedWithCode(2),
              "--users expects a number, got '1e2x'");
}

TEST(FlagsDeathTest, GetIntExitsTwoNamingTheMalformedFlag) {
  const Flags f = make_flags({"--jobs", "4x"});
  EXPECT_EXIT(f.get_int("jobs", 1), ::testing::ExitedWithCode(2),
              "--jobs expects an integer, got '4x'");
}

TEST(FlagsDeathTest, GetIntRejectsFractions) {
  const Flags f = make_flags({"--objects", "2.5"});
  EXPECT_EXIT(f.get_int("objects", 1), ::testing::ExitedWithCode(2),
              "--objects expects an integer");
}

TEST(FlagsDeathTest, ShardsStillRejectsZeroAndGarbage) {
  EXPECT_EXIT(make_flags({"--shards", "0"}).shards(1),
              ::testing::ExitedWithCode(2),
              "--shards expects 'auto' or an integer >= 1");
  EXPECT_EXIT(make_flags({"--shards", "4q"}).shards(1),
              ::testing::ExitedWithCode(2), "--shards expects");
}

TEST(FlagsDeathTest, EpochStillRejectsNonPositive) {
  EXPECT_EXIT(make_flags({"--epoch-s", "0"}).epoch_s(1.0),
              ::testing::ExitedWithCode(2),
              "--epoch-s expects a positive number");
  EXPECT_EXIT(make_flags({"--epoch-s", "inf"}).epoch_s(1.0),
              ::testing::ExitedWithCode(2), "--epoch-s expects");
}

}  // namespace
}  // namespace cdnsim::bench
