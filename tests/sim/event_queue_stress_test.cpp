// Stress and allocation tests for the pooled 4-ary event queue.
//
// 1. A randomized mixed push/cancel/pop workload is checked against a
//    reference model (std::multimap keyed by (time, seq) — the documented
//    pop order), including handle-state transitions across compaction and
//    slot reuse.
// 2. Steady-state scheduling of inline-capacity callbacks is verified to
//    perform zero heap allocations, via a counting global operator new
//    (disabled under sanitizers, which intercept the allocator themselves).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "support/alloc_counter.hpp"
#include "util/rng.hpp"

namespace cdnsim::sim {
namespace {

TEST(EventQueueStressTest, MixedOpsMatchMultimapModel) {
  util::Rng rng(0xc0ffee);
  EventQueue q;
  q.set_compaction_threshold(0.2);  // exercise compaction under churn

  // Reference model: pop order is (time, seq) — multimap preserves
  // insertion order among equal times, exactly the queue's tie-break rule.
  std::multimap<double, int> model;
  std::vector<std::pair<EventHandle, std::multimap<double, int>::iterator>> live;

  int next_id = 0;
  int fired_id = -1;
  std::vector<int> popped_queue;
  std::vector<int> popped_model;

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.5) {  // push
      const double time = rng.uniform(0.0, 100.0);
      const int id = next_id++;
      auto handle = q.push(time, [id, &fired_id] { fired_id = id; });
      auto it = model.emplace(time, id);
      live.emplace_back(std::move(handle), it);
    } else if (roll < 0.7) {  // cancel a random live event
      if (live.empty()) continue;
      const std::size_t pick = rng.index(live.size());
      live[pick].first.cancel();
      EXPECT_FALSE(live[pick].first.pending());
      model.erase(live[pick].second);
      live[pick] = std::move(live.back());
      live.pop_back();
    } else {  // pop
      ASSERT_EQ(q.empty(), model.empty());
      if (model.empty()) continue;
      auto popped = q.pop();
      EXPECT_DOUBLE_EQ(popped.time, model.begin()->first);
      fired_id = -1;
      popped.action();
      popped_queue.push_back(fired_id);
      popped_model.push_back(model.begin()->second);
      // Drop the fired event from the live list so we never cancel it.
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].second == model.begin()) {
          EXPECT_FALSE(live[i].first.pending());
          live[i] = std::move(live.back());
          live.pop_back();
          break;
        }
      }
      model.erase(model.begin());
    }
    ASSERT_EQ(q.live_size(), model.size());
  }

  // Drain: remaining events must pop in exact model order.
  while (!q.empty()) {
    auto popped = q.pop();
    fired_id = -1;
    popped.action();
    popped_queue.push_back(fired_id);
    ASSERT_FALSE(model.empty());
    popped_model.push_back(model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(popped_queue, popped_model);

  // Every surviving handle (its event fired or was drained) is stale now.
  for (auto& entry : live) EXPECT_FALSE(entry.first.pending());
}

TEST(EventQueueStressTest, HandlesInertAfterCompactionAndReuse) {
  util::Rng rng(31337);
  EventQueue q;
  q.set_compaction_threshold(0.1);
  std::vector<EventHandle> stale;
  // Round 1: schedule and cancel enough to force several compactions.
  for (int i = 0; i < 500; ++i) {
    stale.push_back(q.push(rng.uniform(0.0, 10.0), [] {}));
  }
  for (auto& h : stale) h.cancel();
  EXPECT_TRUE(q.empty());
  // Round 2: the freed slots are reused by fresh events.
  int fired = 0;
  std::vector<EventHandle> fresh;
  for (int i = 0; i < 500; ++i) {
    fresh.push_back(q.push(rng.uniform(0.0, 10.0), [&fired] { ++fired; }));
  }
  // Stale handles must observe nothing and cancel nothing.
  for (auto& h : stale) {
    EXPECT_FALSE(h.pending());
    h.cancel();
  }
  for (auto& h : fresh) EXPECT_TRUE(h.pending());
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 500);
}

TEST(EventQueueStressTest, SteadyStateSchedulingDoesNotAllocate) {
#if CDNSIM_ALLOC_COUNTING
  Simulator sim;
  std::uint64_t sink = 0;
  auto run_round = [&] {
    for (int i = 0; i < 4096; ++i) {
      sim.after(static_cast<double>((i * 37) % 97), [&sink] { ++sink; });
    }
    sim.run();
  };
  run_round();  // warm-up: heap/slot vectors reach steady-state capacity

  const std::uint64_t before = testsupport::allocation_count();
  run_round();
  const std::uint64_t after = testsupport::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "steady-state scheduling of inline-capacity callbacks allocated";
  EXPECT_EQ(sink, 2u * 4096u);
#else
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
}

TEST(EventQueueStressTest, OversizedCallbacksRecycleThroughPool) {
#if CDNSIM_ALLOC_COUNTING
  Simulator sim;
  // 64 bytes of captured payload exceeds kInlineCapacity, forcing the
  // pool-backed heap fallback.
  struct Big {
    std::uint64_t payload[8];
  };
  static_assert(sizeof(Big) > EventAction::kInlineCapacity);
  std::uint64_t sink = 0;
  auto run_round = [&] {
    for (int i = 0; i < 512; ++i) {
      Big big{};
      big.payload[0] = static_cast<std::uint64_t>(i);
      sim.after(1.0, [big, &sink] { sink += big.payload[0]; });
    }
    sim.run();
  };
  run_round();  // warm-up populates the thread-local block pool

  const std::uint64_t before = testsupport::allocation_count();
  run_round();
  const std::uint64_t after = testsupport::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "pool-backed fallback hit the global allocator in steady state";
#else
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
}

}  // namespace
}  // namespace cdnsim::sim
