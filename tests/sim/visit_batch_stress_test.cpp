// Stress tests for the precomputed visit schedule against a naive
// one-event-per-visit model.
//
// The batched visit path in the engine trusts trace::build_visit_schedule
// to reproduce the legacy PeriodicTimer arrivals bit for bit. Here the
// schedule is checked against the real thing: per-user periodic timers run
// on a Simulator, recording every (time, user) arrival. The regimes cover
// empty schedules, all visits inside one start window, visits landing
// exactly on the horizon (dropped, matching the engine's `now >= end`
// stop), and u32 user-index limits. Walking a built schedule must not
// allocate (the engine's catch-up loop runs inside the hot event path).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "support/alloc_counter.hpp"
#include "trace/visit_schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cdnsim::trace {
namespace {

struct Arrival {
  sim::SimTime time;
  std::uint32_t user;
  bool operator==(const Arrival& o) const {
    return time == o.time && user == o.user;  // bit-exact on purpose
  }
};

// The reference model: one PeriodicTimer per user, phases drawn in user-id
// order from an identically seeded RNG — exactly the legacy engine's visit
// loop. Produces per-server arrival lists sorted by (time, user); the
// simulator pops equal-time events FIFO and users start in id order, so the
// tie-break falls out of event order.
std::vector<std::vector<Arrival>> naive_arrivals(std::size_t server_count,
                                                 std::size_t users_per_server,
                                                 sim::SimTime period_s,
                                                 sim::SimTime start_window_s,
                                                 sim::SimTime end_time_s,
                                                 util::Rng& rng) {
  sim::Simulator sim;
  std::vector<std::vector<Arrival>> out(server_count);
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
  const std::size_t total_users = server_count * users_per_server;
  for (std::size_t u = 0; u < total_users; ++u) {
    const std::size_t server = u / users_per_server;
    auto timer = std::make_unique<sim::PeriodicTimer>(
        sim, period_s, [&sim, &out, server, u, end_time_s] {
          if (sim.now() >= end_time_s) return;
          out[server].push_back(
              {sim.now(), static_cast<std::uint32_t>(u)});
        });
    timer->start_after(rng.uniform(0.0, start_window_s));
    timers.push_back(std::move(timer));
  }
  sim.at(end_time_s, [&timers] {
    for (auto& t : timers) t->stop();
  });
  sim.run();
  return out;
}

void expect_matches_naive(std::size_t server_count,
                          std::size_t users_per_server, sim::SimTime period_s,
                          sim::SimTime start_window_s,
                          sim::SimTime end_time_s, std::uint64_t seed) {
  util::Rng schedule_rng(seed);
  util::Rng naive_rng(seed);
  const VisitSchedule schedule =
      build_visit_schedule(server_count, users_per_server, period_s,
                           start_window_s, end_time_s, schedule_rng);
  const auto reference =
      naive_arrivals(server_count, users_per_server, period_s, start_window_s,
                     end_time_s, naive_rng);
  // Both paths must consume the identical RNG prefix.
  EXPECT_EQ(schedule_rng.uniform(0.0, 1.0), naive_rng.uniform(0.0, 1.0));

  ASSERT_EQ(schedule.servers.size(), server_count);
  std::size_t total = 0;
  for (std::size_t s = 0; s < server_count; ++s) {
    const auto& ps = schedule.servers[s];
    ASSERT_EQ(ps.times.size(), ps.users.size());
    ASSERT_EQ(ps.times.size(), ps.deadlines.size());
    ASSERT_EQ(ps.times.size(), reference[s].size())
        << "server " << s << " visit count diverges from the naive model";
    for (std::size_t k = 0; k < ps.times.size(); ++k) {
      EXPECT_EQ(ps.times[k], reference[s][k].time)
          << "server " << s << " visit " << k;
      EXPECT_EQ(ps.users[k], reference[s][k].user)
          << "server " << s << " visit " << k;
      EXPECT_EQ(ps.deadlines[k], ps.times[k] + period_s);
    }
    total += ps.times.size();
  }
  EXPECT_EQ(schedule.total_visits, total);
}

TEST(VisitBatchStressTest, RandomizedRegimesMatchNaivePerVisitModel) {
  util::Rng meta(0x5eed);
  for (int round = 0; round < 30; ++round) {
    const std::size_t servers = 1 + meta.index(6);
    const std::size_t users = 1 + meta.index(5);
    const double period = meta.uniform(0.5, 30.0);
    const double window = meta.uniform(0.0, 60.0);
    const double end = meta.uniform(1.0, 200.0);
    SCOPED_TRACE("round " + std::to_string(round) + ": servers=" +
                 std::to_string(servers) + " users=" + std::to_string(users) +
                 " period=" + std::to_string(period) + " window=" +
                 std::to_string(window) + " end=" + std::to_string(end));
    expect_matches_naive(servers, users, period, window, end,
                         0x1000 + static_cast<std::uint64_t>(round));
  }
}

TEST(VisitBatchStressTest, EmptySchedulesWhenAllPhasesPastHorizon) {
  // Horizon at 0: every phase lands at or past it, so nobody ever visits
  // and every per-server array stays empty. Then the partial case: a wide
  // start window with an earlier horizon drops only the late starters.
  util::Rng rng(9);
  const VisitSchedule schedule = build_visit_schedule(4, 3, 10.0,
                                                      /*start_window_s=*/100.0,
                                                      /*end_time_s=*/0.0, rng);
  EXPECT_EQ(schedule.total_visits, 0u);
  for (const auto& ps : schedule.servers) EXPECT_TRUE(ps.times.empty());
  expect_matches_naive(4, 3, 10.0, 100.0, 40.0, 11);
}

TEST(VisitBatchStressTest, AllVisitsInsideOneWindow) {
  // Period longer than the horizon: each user visits exactly once, at its
  // phase, all inside the single [0, window) epoch.
  util::Rng rng(21);
  const VisitSchedule schedule =
      build_visit_schedule(3, 4, /*period_s=*/1000.0, /*start_window_s=*/5.0,
                           /*end_time_s=*/5.0, rng);
  EXPECT_EQ(schedule.total_visits, 12u);
  for (const auto& ps : schedule.servers) {
    ASSERT_EQ(ps.times.size(), 4u);
    for (std::size_t k = 1; k < ps.times.size(); ++k) {
      EXPECT_LE(ps.times[k - 1], ps.times[k]) << "not sorted";
    }
  }
  expect_matches_naive(3, 4, 1000.0, 5.0, 5.0, 22);
}

TEST(VisitBatchStressTest, VisitExactlyAtHorizonIsDropped) {
  // Zero start window puts every phase at exactly 0; with period 2.5 and
  // horizon 10 the arrivals are {0, 2.5, 5, 7.5} — the t == 10 visit is
  // dropped by the strict < comparison, as the engine drops it.
  util::Rng rng(5);
  const VisitSchedule schedule = build_visit_schedule(
      2, 1, /*period_s=*/2.5, /*start_window_s=*/0.0, /*end_time_s=*/10.0, rng);
  for (const auto& ps : schedule.servers) {
    ASSERT_EQ(ps.times.size(), 4u);
    EXPECT_EQ(ps.times.front(), 0.0);
    EXPECT_EQ(ps.times.back(), 7.5);
    EXPECT_EQ(ps.deadlines.back(), 10.0);
  }
  expect_matches_naive(2, 1, 2.5, 0.0, 10.0, 5);
}

TEST(VisitBatchStressTest, UserIndicesBeyond16BitsSurvive) {
  // 70k users on one server: indices overflow u16 but must fit u32 intact.
  util::Rng rng(77);
  const VisitSchedule schedule = build_visit_schedule(
      1, 70000, /*period_s=*/100.0, /*start_window_s=*/1.0,
      /*end_time_s=*/1.5, rng);
  EXPECT_EQ(schedule.total_visits, 70000u);
  std::uint32_t max_user = 0;
  for (const std::uint32_t u : schedule.servers[0].users) {
    max_user = std::max(max_user, u);
  }
  EXPECT_EQ(max_user, 69999u);
}

TEST(VisitBatchStressTest, RejectsUserPopulationsBeyond32Bits) {
  util::Rng rng(1);
  const std::size_t half =
      std::size_t{std::numeric_limits<std::uint32_t>::max()} / 2 + 1;
  EXPECT_THROW(build_visit_schedule(half, 3, 10.0, 1.0, 0.0, rng),
               PreconditionError);
}

TEST(VisitBatchStressTest, WalkingASchedulePerformsNoAllocations) {
#if CDNSIM_ALLOC_COUNTING
  util::Rng rng(123);
  const VisitSchedule schedule =
      build_visit_schedule(8, 5, 3.0, 50.0, 400.0, rng);
  ASSERT_GT(schedule.total_visits, 0u);
  // The engine's catch-up loop is exactly this shape: advance a cursor over
  // the SoA arrays, reading times/users/deadlines. It must stay off the
  // heap — the loop runs inside the hot event path.
  double sink = 0.0;
  const std::uint64_t before = testsupport::allocation_count();
  for (const auto& ps : schedule.servers) {
    for (std::size_t k = 0; k < ps.times.size(); ++k) {
      sink += ps.times[k] + ps.deadlines[k] +
              static_cast<double>(ps.users[k]);
    }
  }
  const std::uint64_t after = testsupport::allocation_count();
  EXPECT_EQ(after - before, 0u) << "schedule walk allocated";
  EXPECT_GT(sink, 0.0);
#else
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
}

}  // namespace
}  // namespace cdnsim::trace
