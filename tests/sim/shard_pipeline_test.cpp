// Determinism tests for the overlapped epoch pipeline's merge-queue API.
//
// The pipelined sharded driver (engine.cpp run_sharded_pipelined) replaces
// the lockstep global drain() with double-buffered staging generations:
// lanes emit into the write generation while, concurrently, each lane's
// worker consumes its own column of the read generation via take_incoming().
// The byte-identity guarantee survives only if
//   1. each take_incoming(t) column comes out sorted by (arrival, sender,
//      seq) and equals the target-t subsequence of what a global drain()
//      would have produced,
//   2. the handoff stays deterministic under randomized lane timing and
//      concurrent emission/injection — order must be a pure function of the
//      message keys, never of thread interleaving, and
//   3. flip() refuses to recycle a generation that still holds messages
//      (a leftover would silently time-travel into a later round).
// ShardPipeline* runs under the TSan tier as well (tier1.sh) to certify the
// emit / flip / take_incoming protocol race-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/shard_merge.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cdnsim::sim {
namespace {

struct Key {
  SimTime arrival;
  std::int32_t sender;
  std::uint64_t seq;
  std::uint32_t target;
  bool operator==(const Key& o) const {
    return arrival == o.arrival && sender == o.sender && seq == o.seq &&
           target == o.target;
  }
};

bool key_sorted(const Key& a, const Key& b) {
  return std::tie(a.arrival, a.sender, a.seq) <
         std::tie(b.arrival, b.sender, b.seq);
}

Key key_of(const ShardMergeQueue::Message& m) {
  return {m.arrival, m.sender, m.seq, m.target_lane};
}

// Message is move-only (it carries an InlineAction); the tests only care
// about the key fields, so a field-wise clone stands in for a copy.
ShardMergeQueue::Message clone(const ShardMergeQueue::Message& m) {
  ShardMergeQueue::Message c;
  c.arrival = m.arrival;
  c.sender = m.sender;
  c.seq = m.seq;
  c.target_lane = m.target_lane;
  return c;
}

// A deterministic population with heavy arrival collisions (so sender/seq
// tie-breaks actually fire) and randomized target lanes.
std::vector<ShardMergeQueue::Message> make_population(std::uint64_t seed,
                                                      std::size_t count,
                                                      std::size_t lane_count) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> next_seq(9, 0);
  std::vector<ShardMergeQueue::Message> msgs;
  for (std::size_t i = 0; i < count; ++i) {
    ShardMergeQueue::Message m;
    m.arrival = static_cast<SimTime>(rng.index(5)) * 0.25;
    m.sender = static_cast<std::int32_t>(rng.index(9)) - 1;  // provider = -1
    m.seq = next_seq[static_cast<std::size_t>(m.sender + 1)]++;
    m.target_lane = static_cast<std::uint32_t>(rng.index(lane_count));
    msgs.push_back(std::move(m));
  }
  return msgs;
}

TEST(ShardPipelineTest, ColumnsEqualTargetSubsequencesOfGlobalDrain) {
  constexpr std::size_t kLanes = 4;
  const auto msgs = make_population(0x90ab, 400, kLanes);

  // Reference: a lockstep queue draining everything globally sorted.
  ShardMergeQueue global(kLanes);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    global.emit(i % kLanes, clone(msgs[i]));
  }
  std::vector<Key> global_keys;
  for (const auto& m : global.drain()) global_keys.push_back(key_of(m));

  // Pipelined consumption: flip, then take each target's column.
  ShardMergeQueue piped(kLanes);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    piped.emit(i % kLanes, clone(msgs[i]));
  }
  piped.flip();
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < kLanes; ++t) {
    std::vector<Key> expected;
    for (const Key& k : global_keys) {
      if (k.target == t) expected.push_back(k);
    }
    EXPECT_EQ(piped.incoming_count(t), expected.size());
    std::vector<Key> column;
    for (const auto& m : piped.take_incoming(t)) column.push_back(key_of(m));
    EXPECT_TRUE(std::is_sorted(column.begin(), column.end(), key_sorted));
    EXPECT_EQ(column, expected) << "target " << t;
    total += column.size();
  }
  EXPECT_EQ(total, msgs.size());
  EXPECT_TRUE(piped.empty());
}

TEST(ShardPipelineTest, OverlappedRoundsDeterministicUnderRandomizedTiming) {
  // The production shape, run hot: after each flip, every lane's worker
  // concurrently (a) consumes its own read-generation column and (b) emits
  // the next round's messages into its own write-generation row — with
  // randomized per-thread sleeps and yields so the interleaving differs run
  // to run. The per-target injection sequences must equal the
  // single-threaded reference every time.
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kRounds = 6;
  constexpr std::size_t kPerLane = 120;

  // Messages lane `lane` emits during round `round`: sender ids disjoint
  // across lanes (single-writer anchoring, like the engine), (sender, seq)
  // unique within the round's generation.
  auto lane_messages = [](std::size_t round, std::size_t lane) {
    util::Rng rng(0xc0de + round * 131 + lane);
    std::uint64_t seqs[2] = {0, 0};
    std::vector<ShardMergeQueue::Message> msgs;
    for (std::size_t k = 0; k < kPerLane; ++k) {
      ShardMergeQueue::Message m;
      m.arrival = static_cast<SimTime>(rng.index(4)) * 0.5;
      const std::size_t s = k % 2;
      m.sender = static_cast<std::int32_t>(lane * 100 + s);
      m.seq = seqs[s]++;
      m.target_lane = static_cast<std::uint32_t>(rng.index(kLanes));
      msgs.push_back(std::move(m));
    }
    return msgs;
  };

  // consumed[t] accumulates the injection order lane t would have seen.
  using Consumed = std::vector<std::vector<Key>>;
  auto run_once = [&](bool threaded, std::uint64_t timing_seed) {
    ShardMergeQueue q(kLanes);
    Consumed consumed(kLanes);
    // Round 0 is staged up front (the driver's first round has no incoming).
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      for (auto& m : lane_messages(0, lane)) q.emit(lane, std::move(m));
    }
    for (std::size_t round = 1; round <= kRounds; ++round) {
      q.flip();
      const bool emit_more = round < kRounds;
      if (threaded) {
        util::ThreadPool pool(kLanes);
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          pool.submit([&, lane] {
            util::Rng delay(timing_seed * 1000003 + round * 31 + lane);
            // Randomized start skew: some workers race ahead of others.
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay.index(200)));
            auto col = q.take_incoming(lane);
            auto next = emit_more
                            ? lane_messages(round, lane)
                            : std::vector<ShardMergeQueue::Message>{};
            // Interleave consumption with emission of the next round.
            std::size_t e = 0;
            for (std::size_t i = 0; i < col.size(); ++i) {
              if (delay.index(16) == 0) std::this_thread::yield();
              consumed[lane].push_back(key_of(col[i]));
              while (e < next.size() && delay.index(3) == 0) {
                q.emit(lane, std::move(next[e++]));
              }
            }
            while (e < next.size()) q.emit(lane, std::move(next[e++]));
          });
        }
        pool.wait_idle();
      } else {
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          for (const auto& m : q.take_incoming(lane)) {
            consumed[lane].push_back(key_of(m));
          }
          if (emit_more) {
            for (auto& m : lane_messages(round, lane)) {
              q.emit(lane, std::move(m));
            }
          }
        }
      }
    }
    EXPECT_TRUE(q.empty());
    return consumed;
  };

  const Consumed reference = run_once(/*threaded=*/false, 0);
  std::size_t total = 0;
  for (const auto& column : reference) total += column.size();
  ASSERT_EQ(total, kRounds * kLanes * kPerLane);
  for (std::uint64_t round = 0; round < 3; ++round) {
    EXPECT_EQ(run_once(/*threaded=*/true, round + 1), reference)
        << "timing seed " << round + 1;
  }
}

TEST(ShardPipelineTest, StagingAccountingTracksEmitsAcrossFlips) {
  ShardMergeQueue q(2);
  EXPECT_EQ(q.staged_count(), 0u);
  EXPECT_EQ(q.min_staged_arrival(),
            std::numeric_limits<SimTime>::infinity());

  ShardMergeQueue::Message a;
  a.arrival = 2.5;
  a.sender = 0;
  a.seq = 0;
  a.target_lane = 1;
  q.emit(0, std::move(a));
  ShardMergeQueue::Message b;
  b.arrival = 0.75;
  b.sender = 1;
  b.seq = 0;
  b.target_lane = 0;
  q.emit(1, std::move(b));
  EXPECT_EQ(q.staged_count(), 2u);
  EXPECT_EQ(q.min_staged_arrival(), 0.75);

  q.flip();
  // Flipped messages are incoming, not staged: the write generation is
  // fresh, and the columns report per-target counts.
  EXPECT_EQ(q.staged_count(), 0u);
  EXPECT_EQ(q.min_staged_arrival(),
            std::numeric_limits<SimTime>::infinity());
  EXPECT_EQ(q.incoming_count(0), 1u);
  EXPECT_EQ(q.incoming_count(1), 1u);
  EXPECT_EQ(q.take_incoming(0).size(), 1u);
  EXPECT_EQ(q.take_incoming(1).size(), 1u);
  EXPECT_TRUE(q.empty());

  // min_staged_arrival resets after the round trip.
  ShardMergeQueue::Message c;
  c.arrival = 9.0;
  c.sender = 0;
  c.seq = 1;
  c.target_lane = 0;
  q.emit(0, std::move(c));
  EXPECT_EQ(q.min_staged_arrival(), 9.0);
}

TEST(ShardPipelineTest, FlipRefusesUnconsumedReadGeneration) {
  ShardMergeQueue q(2);
  ShardMergeQueue::Message m;
  m.arrival = 1.0;
  m.sender = 0;
  m.seq = 0;
  m.target_lane = 1;
  q.emit(0, std::move(m));
  q.flip();  // message now sits unconsumed in the read generation
  ShardMergeQueue::Message next;
  next.arrival = 2.0;
  next.sender = 0;
  next.seq = 1;
  next.target_lane = 0;
  q.emit(0, std::move(next));
  EXPECT_THROW(q.flip(), cdnsim::PreconditionError);
  // After consuming the column the flip goes through.
  EXPECT_EQ(q.take_incoming(1).size(), 1u);
  EXPECT_NO_THROW(q.flip());
  EXPECT_EQ(q.take_incoming(0).size(), 1u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace cdnsim::sim
