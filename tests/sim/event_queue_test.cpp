#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace cdnsim::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(7.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueTest, CancelledEventsAreSkipped) {
  EventQueue q;
  std::vector<int> order;
  auto h = q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, CancellingAllEmptiesQueue) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  auto h2 = q.push(2.0, [] {});
  h1.cancel();
  h2.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, HandleNotPendingAfterFire) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  EXPECT_TRUE(h.pending());
  q.pop().action();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueueTest, DefaultHandleIsNotPending) {
  const EventHandle h;
  EXPECT_FALSE(h.pending());
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), cdnsim::PreconditionError);
  EXPECT_THROW(q.next_time(), cdnsim::PreconditionError);
}

TEST(EventQueueTest, NullActionThrows) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, EventAction{}), cdnsim::PreconditionError);
}

}  // namespace
}  // namespace cdnsim::sim
