#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace cdnsim::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(7.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueTest, CancelledEventsAreSkipped) {
  EventQueue q;
  std::vector<int> order;
  auto h = q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, CancellingAllEmptiesQueue) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  auto h2 = q.push(2.0, [] {});
  h1.cancel();
  h2.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, HandleNotPendingAfterFire) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  EXPECT_TRUE(h.pending());
  q.pop().action();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueueTest, DefaultHandleIsNotPending) {
  const EventHandle h;
  EXPECT_FALSE(h.pending());
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), cdnsim::PreconditionError);
  EXPECT_THROW(q.next_time(), cdnsim::PreconditionError);
}

TEST(EventQueueTest, NullActionThrows) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, EventAction{}), cdnsim::PreconditionError);
}

TEST(EventQueueTest, StaleHandleAfterSlotReuseIsInert) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  h1.cancel();
  // The cancelled slot is recycled immediately; the next push reuses it.
  bool fired = false;
  auto h2 = q.push(2.0, [&] { fired = true; });
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  // Cancelling through the stale handle must not kill the new event.
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  while (!q.empty()) q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, StaleHandleAfterFireAndReuseIsInert) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  q.pop().action();
  bool fired = false;
  q.push(2.0, [&] { fired = true; });
  EXPECT_FALSE(h1.pending());
  h1.cancel();  // must not touch the reused slot
  ASSERT_FALSE(q.empty());
  q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, CompactionEvictsTombstones) {
  EventQueue q;
  q.set_compaction_threshold(0.1);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(q.push(static_cast<double>(i), [] {}));
  }
  for (int i = 0; i < 150; ++i) handles[static_cast<std::size_t>(i)].cancel();
  // With a 10% threshold, the 150 tombstones cannot all still be resident.
  EXPECT_LT(q.size_including_cancelled(), 200u);
  EXPECT_EQ(q.live_size(), 50u);
  // Survivors still pop in time order with correct payload behaviour.
  double prev = -1;
  std::size_t popped = 0;
  while (!q.empty()) {
    const double t = q.next_time();
    EXPECT_GT(t, prev);
    prev = t;
    q.pop().action();
    ++popped;
  }
  EXPECT_EQ(popped, 50u);
}

TEST(EventQueueTest, HandlesStayValidAcrossCompaction) {
  EventQueue q;
  q.set_compaction_threshold(0.1);
  auto keeper = q.push(500.0, [] {});
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 100; ++i) {
    doomed.push_back(q.push(static_cast<double>(i), [] {}));
  }
  for (auto& h : doomed) h.cancel();  // triggers compaction repeatedly
  EXPECT_TRUE(keeper.pending());
  keeper.cancel();
  EXPECT_FALSE(keeper.pending());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CompactionThresholdMustBeAFraction) {
  EventQueue q;
  EXPECT_THROW(q.set_compaction_threshold(0.0), cdnsim::PreconditionError);
  EXPECT_THROW(q.set_compaction_threshold(1.5), cdnsim::PreconditionError);
  q.set_compaction_threshold(1.0);  // boundary is allowed
}

TEST(EventQueueTest, LiveSizeTracksPushPopCancel) {
  EventQueue q;
  EXPECT_EQ(q.live_size(), 0u);
  auto h = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.live_size(), 2u);
  h.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  q.pop();
  EXPECT_EQ(q.live_size(), 0u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace cdnsim::sim
