#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace cdnsim::sim {
namespace {

TEST(TimerTest, TicksAtFixedPeriod) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicTimer timer(sim, 10.0, [&] {
    ticks.push_back(sim.now());
    if (ticks.size() == 3) timer.stop();
  });
  timer.start();
  sim.run();
  EXPECT_EQ(ticks, (std::vector<double>{10, 20, 30}));
}

TEST(TimerTest, StartAfterControlsPhase) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicTimer timer(sim, 10.0, [&] {
    ticks.push_back(sim.now());
    if (ticks.size() == 2) timer.stop();
  });
  timer.start_after(3.0);
  sim.run();
  EXPECT_EQ(ticks, (std::vector<double>{3, 13}));
}

TEST(TimerTest, StopPreventsFurtherTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 5.0, [&] { ++ticks; });
  timer.start();
  sim.at(12.0, [&] { timer.stop(); });
  sim.run();
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(timer.running());
}

TEST(TimerTest, SetPeriodTakesEffectNextArm) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicTimer timer(sim, 10.0, [&] {
    ticks.push_back(sim.now());
    if (ticks.size() == 1) timer.set_period(2.0);
    if (ticks.size() == 3) timer.stop();
  });
  timer.start();
  sim.run();
  // First tick at 10; re-arm happened before the callback changed the
  // period, so the second tick is at 20, then 22.
  EXPECT_EQ(ticks, (std::vector<double>{10, 20, 22}));
}

TEST(TimerTest, RestartAfterStop) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 5.0, [&] {
    ++ticks;
    timer.stop();
  });
  timer.start();
  sim.at(20.0, [&] { timer.start_after(1.0); });
  sim.run();
  EXPECT_EQ(ticks, 2);
}

TEST(TimerTest, CreatedStopped) {
  Simulator sim;
  PeriodicTimer timer(sim, 5.0, [] {});
  EXPECT_FALSE(timer.running());
  sim.run();
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(TimerTest, InvalidConstructionThrows) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, 0.0, [] {}), cdnsim::PreconditionError);
  EXPECT_THROW(PeriodicTimer(sim, 1.0, PeriodicTimer::Callback{}),
               cdnsim::PreconditionError);
}

TEST(TimerTest, DestructionCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer(sim, 5.0, [&] { ++ticks; });
    timer.start();
  }
  sim.run();
  EXPECT_EQ(ticks, 0);
}

}  // namespace
}  // namespace cdnsim::sim
