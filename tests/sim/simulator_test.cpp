#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace cdnsim::sim {
namespace {

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  double seen = -1;
  sim.at(10.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.at(5.0, [&] { sim.after(2.5, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  // Scheduling before now() is a runtime corruption of the event order and
  // must fail loudly (cdnsim::Error), not silently reorder the past.
  EXPECT_THROW(sim.at(4.0, [] {}), cdnsim::Error);
  EXPECT_THROW(sim.after(-1.0, [] {}), cdnsim::PreconditionError);
}

TEST(SimulatorTest, SchedulingInPastFromCallbackThrows) {
  // Regression: the check must hold against the *advanced* clock while the
  // simulation is running, not just the construction-time clock.
  Simulator sim;
  bool threw = false;
  sim.at(10.0, [&] {
    try {
      sim.at(9.0, [] {});
    } catch (const cdnsim::Error&) {
      threw = true;
    }
  });
  sim.run();
  EXPECT_TRUE(threw);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, SchedulingAtNanThrows) {
  Simulator sim;
  EXPECT_THROW(
      sim.at(std::numeric_limits<double>::quiet_NaN(), [] {}), cdnsim::Error);
}

TEST(SimulatorTest, SchedulingAtNowIsAllowed) {
  Simulator sim;
  int fired = 0;
  sim.at(5.0, [&] { sim.at(sim.now(), [&] { ++fired; }); });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.at(5.0, [&] { fired = true; });
  sim.run(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsCountIsTracked) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
  EXPECT_TRUE(sim.drained());
}

TEST(SimulatorTest, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CascadingEventsRunToCompletion) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.after(1.0, chain);
  };
  sim.at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  auto h = sim.at(1.0, [&] { fired = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(0); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace cdnsim::sim
