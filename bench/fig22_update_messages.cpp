// Figure 22: update-message savings of the hybrid/self-adaptive systems.
//  (a) number of update messages (pushes, fetch/poll responses) vs the
//      end-user TTL for all six systems:
//      Push > Invalidation > Hybrid ~ TTL > HAT > Self;
//  (b) number of update messages sent by the content provider vs the
//      content-server TTL: Hybrid and HAT offload the provider by orders of
//      magnitude (only the supernode-tree roots are served directly).
// Pass --ablate-k 1 to also sweep the supernode fanout (DESIGN.md choice #1).
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 22: number of update messages (six systems)");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  const auto systems = bench::section5_systems();

  std::cout << "\n--- (a) update messages vs end-user TTL ---\n";
  std::vector<std::string> header{"user_ttl_s"};
  for (const auto& s : systems) header.push_back(s.name);
  util::TextTable table_a(header);
  std::vector<double> at10(systems.size());
  std::vector<double> user_ttls{10, 20, 30, 40, 50, 60};
  if (flags.small()) user_ttls = {10, 30, 60};
  for (double user_ttl : user_ttls) {
    std::vector<double> row{user_ttl};
    for (std::size_t i = 0; i < systems.size(); ++i) {
      auto ec = bench::section5_config(systems[i].method, systems[i].infra);
      ec.user_poll_period_s = user_ttl;
      ec.user_start_window_s = user_ttl;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add(std::string("a/user_ttl=") + util::format_double(user_ttl, 0) +
                  "/" + systems[i].name,
              r);
      row.push_back(static_cast<double>(r.traffic.update_messages));
      if (user_ttl == 10) at10[i] = static_cast<double>(r.traffic.update_messages);
    }
    table_a.add_row(row, 0);
  }
  table_a.print(std::cout);

  std::cout << "\n--- (b) update messages from the provider vs server TTL ---\n";
  std::vector<double> server_ttls{10, 20, 30, 40, 50, 60};
  if (flags.small()) server_ttls = {10, 60};
  util::TextTable table_b(header);
  std::vector<double> from_cp_at60(systems.size());
  for (double server_ttl : server_ttls) {
    std::vector<double> row{server_ttl};
    for (std::size_t i = 0; i < systems.size(); ++i) {
      auto ec = bench::section5_config(systems[i].method, systems[i].infra);
      ec.method.server_ttl_s = server_ttl;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add(std::string("b/server_ttl=") +
                  util::format_double(server_ttl, 0) + "/" + systems[i].name,
              r);
      row.push_back(static_cast<double>(r.provider_traffic.update_messages));
      if (server_ttl == 60) {
        from_cp_at60[i] = static_cast<double>(r.provider_traffic.update_messages);
      }
    }
    table_b.add_row(row, 0);
  }
  table_b.print(std::cout);

  if (flags.get_int("ablate-k", 0) != 0) {
    std::cout << "\n--- ablation: supernode fanout k (HAT) ---\n";
    util::TextTable abl({"k", "update_msgs", "load_km", "avg_inconsistency_s"});
    for (std::size_t k : {2u, 4u, 8u, 16u}) {
      auto ec = bench::section5_config(consistency::UpdateMethod::kSelfAdaptive,
                                       consistency::InfrastructureKind::
                                           kHybridSupernode);
      ec.infrastructure.supernode_fanout = k;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add("ablate-k/" + std::to_string(k), r);
      abl.add_row({static_cast<double>(k),
                   static_cast<double>(r.traffic.update_messages),
                   r.traffic.load_km_total(), r.avg_server_inconsistency_s},
                  2);
    }
    abl.print(std::cout);
  }

  // Indices: 0 Push, 1 Invalidation, 2 TTL, 3 Self, 4 Hybrid, 5 HAT.
  util::ShapeCheck check("fig22");
  check.expect_greater(at10[0], at10[1], "(a) Push > Invalidation");
  check.expect_greater(at10[1], at10[2], "(a) Invalidation > TTL");
  check.expect_near(at10[4], at10[2], 0.45, "(a) Hybrid ~ TTL");
  check.expect_greater(at10[2], at10[3], "(a) TTL > Self");
  check.expect_greater(at10[5], at10[3], "(a) HAT > Self (supernode pushes)");
  check.expect_less(at10[5], at10[2] * 1.15, "(a) HAT <= ~TTL");
  check.expect_less(from_cp_at60[5], from_cp_at60[2] / 10.0,
                    "(b) HAT's provider load is a small fraction of TTL's");
  check.expect_less(from_cp_at60[4], from_cp_at60[2] / 10.0,
                    "(b) Hybrid's provider load likewise");
  obs.write_direct();
  return bench::finish(check);
}
