// Figure 8: consistency ratio vs provider-server distance.
//
// Paper finding: the average consistency ratio and the provider-server
// distance have almost no correlation (r = 0.11) — propagation delay is not
// a meaningful cause of inconsistency.
#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 8: consistency ratio vs provider-server distance");

  auto cfg = bench::measurement_config(flags);
  bench::ObsSession obs(argc, argv, flags, cfg.seed);
  cfg.record_trace_events = obs.trace_enabled();
  const auto results = core::run_measurement_study(cfg);

  util::TextTable table({"distance_km", "avg_consistency_ratio", "servers"});
  std::vector<double> dist, ratio;
  for (const auto& r : results.distance_consistency) {
    table.add_row({r.distance_km, r.avg_consistency_ratio,
                   static_cast<double>(r.servers)},
                  3);
    if (r.servers >= 3) {
      dist.push_back(r.distance_km);
      ratio.push_back(r.avg_consistency_ratio);
    }
  }
  table.print(std::cout);

  const double r = util::pearson(dist, ratio);
  std::cout << "\npearson(distance, consistency ratio) = " << r
            << "   (paper: r = 0.11)\n";

  util::ShapeCheck check("fig8");
  check.expect_in_range(std::abs(r), 0.0, 0.5,
                        "distance and consistency barely correlate");
  double min_ratio = 1.0, max_ratio = 0.0;
  for (double x : ratio) {
    min_ratio = std::min(min_ratio, x);
    max_ratio = std::max(max_ratio, x);
  }
  check.expect_less(max_ratio - min_ratio, 0.30,
                    "ratio band is narrow across all distances");
  obs.write_study("fig08", results.metrics, &results.trace);
  return bench::finish(check);
}
