// Extension experiment: consistency methods under network faults.
//
// Section 1 of the paper argues that soft-state TTL survives real networks
// where hard-state methods (Push, Invalidation) break: "node failures break
// the structure connectivity and lead to unsuccessful update propagation".
// The churn bench measures the *node*-failure half of that claim; this one
// measures the *network* half with src/fault: sweep per-message loss rate
// and watch
//
//  * TTL stay ~flat — every lost poll or response is retried by the next
//    poll tick, so loss only adds one-TTL bumps;
//  * fire-and-forget Push and Invalidation degrade monotonically — a lost
//    push strands the replica until the next update, a lost invalidation
//    until the next user-triggered fetch;
//  * Push/Invalidation over the reliable-delivery layer (ack/timeout/retry
//    with exponential backoff) recover to near their lossless baseline, at a
//    measurable cost in extra update messages and acks.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Extension: fault tolerance under message loss");

  auto eval = bench::evaluation_setup(flags);

  struct SystemRow {
    const char* name;
    UpdateMethod method;
    bool reliable;
  };
  const std::vector<SystemRow> systems{
      {"TTL", UpdateMethod::kTtl, false},
      {"Push", UpdateMethod::kPush, false},
      {"Invalidation", UpdateMethod::kInvalidation, false},
      {"Push+retry", UpdateMethod::kPush, true},
      {"Invalidation+retry", UpdateMethod::kInvalidation, true},
  };

  std::vector<double> loss_rates{0.0, 0.05, 0.15, 0.3};
  if (flags.small()) loss_rates = {0.0, 0.15, 0.3};

  std::vector<core::BatchJob> jobs;
  jobs.reserve(loss_rates.size() * systems.size());
  for (double loss : loss_rates) {
    for (const auto& system : systems) {
      core::BatchJob job;
      job.shared_nodes = eval.scenario.nodes.get();
      job.shared_trace = &eval.game;
      job.engine = bench::section4_config(system.method,
                                          InfrastructureKind::kUnicast);
      job.engine.fault.enabled = true;
      job.engine.fault.loss_probability = loss;
      job.engine.fault.duplicate_probability = flags.get("dup", 0.0);
      job.engine.fault.extra_delay_max_s = flags.get("jitter", 0.0);
      job.engine.reliable.enabled = system.reliable;
      job.engine.reliable.ack_timeout_s = flags.get("ack-timeout", 2.0);
      job.engine.reliable.max_retries =
          static_cast<int>(flags.get_int("max-retries", 4));
      job.label = std::string(system.name) + "@" + std::to_string(loss);
      jobs.push_back(std::move(job));
    }
  }
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  obs.apply(jobs);
  // Fault plans shard: injector substreams are per-node, so lane-partitioned
  // runs stay byte-identical to classic lane counts.
  obs.set_shards(bench::apply_shard_flags(
      jobs, flags.shards(consistency::EngineConfig::ShardConfig::kAuto),
      flags.epoch_s(0.25)));
  const core::BatchRunner runner(
      {.threads = flags.jobs(), .heartbeat_period_s = flags.heartbeat()});
  core::BatchRunStats batch_stats;
  const auto results =
      bench::run_batch_reported(runner, jobs, false, &batch_stats);
  obs.write(results, batch_stats);

  // Per-system series over the loss sweep.
  std::vector<std::vector<double>> inconsistency(systems.size());
  std::vector<std::vector<double>> update_msgs(systems.size());
  std::vector<std::vector<double>> retries(systems.size());
  std::vector<std::vector<double>> give_ups(systems.size());
  std::vector<std::vector<double>> converged(systems.size());

  std::size_t job_index = 0;
  for (double loss : loss_rates) {
    std::cout << "\n--- loss rate " << loss << " ---\n";
    util::TextTable table({"system", "avg_inconsistency_s", "update_msgs",
                           "dropped", "retries", "give_ups",
                           "converged_frac"});
    for (std::size_t i = 0; i < systems.size(); ++i) {
      const auto& r = results[job_index++].sim;
      obs::MetricsRegistry m = r.metrics;
      inconsistency[i].push_back(r.avg_server_inconsistency_s);
      update_msgs[i].push_back(static_cast<double>(r.traffic.update_messages));
      retries[i].push_back(
          static_cast<double>(m.counter("reliable.retries").value));
      give_ups[i].push_back(
          static_cast<double>(m.counter("reliable.give_ups").value));
      converged[i].push_back(r.converged_server_fraction);
      table.add_row(std::vector<std::string>{
          systems[i].name, util::format_double(r.avg_server_inconsistency_s, 3),
          std::to_string(r.traffic.update_messages),
          std::to_string(m.counter("fault.messages_dropped").value),
          std::to_string(m.counter("reliable.retries").value),
          std::to_string(m.counter("reliable.give_ups").value),
          util::format_double(r.converged_server_fraction, 3)});
    }
    table.print(std::cout);
  }

  // Indices: 0 TTL, 1 Push, 2 Invalidation, 3 Push+retry, 4 Inv+retry.
  util::ShapeCheck check("ext-fault");
  const std::size_t last = loss_rates.size() - 1;
  // Hard-state methods without retries degrade monotonically with loss.
  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    for (std::size_t k = 0; k + 1 <= last; ++k) {
      check.expect_greater(
          inconsistency[i][k + 1], inconsistency[i][k],
          std::string(systems[i].name) + " degrades from loss " +
              util::format_double(loss_rates[k], 2) + " to " +
              util::format_double(loss_rates[k + 1], 2));
    }
  }
  // Soft-state TTL self-heals: a lost poll round trip costs one extra poll
  // period, so the curve stays bounded by a few TTLs regardless of horizon…
  check.expect_less(inconsistency[0][last], inconsistency[0][0] + 30.0,
                    "TTL stays near-flat: loss adds at most a few poll periods");
  // …and in *relative* terms it barely moves while fire-and-forget Push
  // collapses (a stranded replica stays stale until the next update).
  check.expect_less(inconsistency[0][last] / inconsistency[0][0],
                    0.5 * inconsistency[1][last] / inconsistency[1][0],
                    "TTL's relative degradation is tiny next to Push's");
  check.expect_near(converged[0][last], 1.0, 0.01,
                    "every TTL replica converges: the next poll always heals");
  check.expect_less(converged[1][last], 1.0,
                    "fire-and-forget Push strands replicas permanently");
  // The reliable layer restores the hard-state methods: full convergence and
  // near-baseline inconsistency (Invalidation keeps a demand-driven tail —
  // retried notices and lost user visits each cost ack-timeout-scale delays).
  check.expect_less(inconsistency[3][last], inconsistency[3][0] + 2.0,
                    "Push+retry recovers to near its lossless baseline");
  check.expect_less(inconsistency[4][last], inconsistency[4][0] + 8.0,
                    "Invalidation+retry recovers to within a few ack timeouts");
  check.expect_near(converged[3][last], 1.0, 0.01,
                    "Push+retry converges every replica");
  check.expect_near(converged[4][last], 1.0, 0.01,
                    "Invalidation+retry converges every replica");
  check.expect_less(inconsistency[3][last], inconsistency[1][last],
                    "retries beat fire-and-forget Push under loss");
  // …and pays for it in retransmissions.
  check.expect_greater(update_msgs[3][last], update_msgs[1][last],
                       "recovery costs extra update messages");
  check.expect_greater(retries[3][last], 0.0, "Push+retry retransmitted");
  check.expect_greater(retries[4][last], 0.0,
                       "Invalidation+retry retransmitted");
  check.expect_near(retries[0][last], 0.0, 0.5,
                    "TTL never touches the reliable layer");
  check.expect_near(give_ups[3][0], 0.0, 0.5,
                    "no give-ups without loss");
  return bench::finish(check);
}
