// Figure 4: user-perspective consistency.
//  (a) CDF of users vs fraction of visits redirected to another server
//  (b) average fraction of inconsistent servers per day
//  (c) CDF of continuous consistency time
//  (d) CDF of continuous inconsistency time
//  (e) 5th/median/95th continuous inconsistency vs visit frequency 10-60 s
#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 4: user-perspective consistency");

  auto base = bench::measurement_config(flags, 300, 6);
  bench::ObsSession obs(argc, argv, flags, base.seed);
  // The obs hooks attach to the panel-(b) measurement study; the
  // user-perspective sweeps keep their own single-day registries.
  base.record_trace_events = obs.trace_enabled();

  core::UserPerspectiveConfig up;
  up.base = base;
  up.base.days = 1;
  up.user_count =
      static_cast<std::size_t>(flags.get_int("users", flags.small() ? 40 : 200));
  const auto r = core::run_user_perspective_study(up);

  std::cout << "\n--- (a) CDF of users vs % of requests redirected ---\n";
  util::Cdf redirect_cdf(r.redirection_fractions);
  bench::print_cdf("redirect_fraction", redirect_cdf,
                   {0.05, 0.09, 0.12, 0.15, 0.18, 0.22, 0.27});

  std::cout << "\n--- (b) avg % of inconsistent servers per day ---\n";
  const auto study = core::run_measurement_study(base);
  util::TextTable day_table({"day", "inconsistent_fraction"});
  for (std::size_t d = 0; d < study.daily_inconsistent_server_fraction.size(); ++d) {
    day_table.add_row(
        {static_cast<double>(d + 1), study.daily_inconsistent_server_fraction[d]},
        3);
  }
  day_table.print(std::cout);

  std::cout << "\n--- (c) CDF of continuous consistency time ---\n";
  util::Cdf cons_cdf(r.continuous_consistency);
  bench::print_cdf("consistency_s", cons_cdf, {50, 100, 160, 250, 400, 800, 1600});

  std::cout << "\n--- (d) CDF of continuous inconsistency time ---\n";
  util::Cdf incons_cdf(r.continuous_inconsistency);
  bench::print_cdf("inconsistency_s", incons_cdf, {10, 20, 30, 40, 60, 90});

  std::cout << "\n--- (e) continuous inconsistency vs visit frequency ---\n";
  util::TextTable sweep({"visit_period_s", "p5", "median", "p95"});
  std::vector<double> medians;
  std::vector<double> p95s;
  for (double period : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    core::UserPerspectiveConfig cfg = up;
    cfg.user_poll_period_s = period;
    cfg.base.seed = up.base.seed + static_cast<std::uint64_t>(period);
    const auto sweep_r = core::run_user_perspective_study(cfg);
    if (sweep_r.continuous_inconsistency.empty()) continue;
    const double p5 = util::percentile(sweep_r.continuous_inconsistency, 0.05);
    const double med = util::percentile(sweep_r.continuous_inconsistency, 0.50);
    const double p95 = util::percentile(sweep_r.continuous_inconsistency, 0.95);
    sweep.add_row({period, p5, med, p95}, 2);
    medians.push_back(med);
    p95s.push_back(p95);
  }
  sweep.print(std::cout);

  util::ShapeCheck check("fig4");
  const double mean_redirect = util::mean(r.redirection_fractions);
  check.expect_in_range(mean_redirect, 0.08, 0.25,
                        "(a) typical users see ~13-17% of visits redirected");
  const double mean_frac = util::mean(study.daily_inconsistent_server_fraction);
  check.expect_in_range(mean_frac, 0.02, 0.80,
                        "(b) a steady fraction of servers is inconsistent");
  check.expect_greater(util::mean(r.continuous_consistency),
                       util::mean(r.continuous_inconsistency),
                       "(c,d) consistency runs far longer than inconsistency runs");
  if (!medians.empty()) {
    check.expect_greater(p95s.back(), p95s.front(),
                         "(e) 95th-pct inconsistency grows with visit period");
  }
  obs.write_study("fig04", study.metrics, &study.trace);
  return bench::finish(check);
}
