// Figure 18: Invalidation with varying end-user TTL (visit period).
//  (a) server inconsistency (5th/median/95th) rises with the end-user TTL
//      — fetches only happen at visits, so rarer visits mean longer
//      staleness;
//  (b) consistency-maintenance traffic cost falls — updates with no visit
//      in between are never transferred.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 18: Invalidation vs end-user TTL");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  util::TextTable table({"user_ttl_s", "infra", "p5_s", "median_s", "p95_s",
                         "cost_km_kb"});
  std::vector<double> uni_median, uni_cost, multi_median, multi_cost;
  for (double user_ttl : {10.0, 30.0, 60.0, 90.0, 120.0}) {
    for (auto infra : {InfrastructureKind::kUnicast,
                       InfrastructureKind::kMulticastTree}) {
      auto ec = bench::section4_config(UpdateMethod::kInvalidation, infra);
      ec.user_poll_period_s = user_ttl;
      ec.user_start_window_s = user_ttl;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add("user_ttl=" + util::format_double(user_ttl, 0) +
                  (infra == InfrastructureKind::kUnicast ? "/unicast"
                                                         : "/multicast"),
              r);
      const auto& inc = r.server_inconsistency_s;
      const double p5 = util::percentile(inc, 0.05);
      const double med = util::percentile(inc, 0.50);
      const double p95 = util::percentile(inc, 0.95);
      table.add_row(std::vector<std::string>{
          util::format_double(user_ttl, 0),
          infra == InfrastructureKind::kUnicast ? "unicast" : "multicast",
          util::format_double(p5, 2), util::format_double(med, 2),
          util::format_double(p95, 2),
          util::format_double(r.traffic.cost_km_kb, 0)});
      if (infra == InfrastructureKind::kUnicast) {
        uni_median.push_back(med);
        uni_cost.push_back(r.traffic.cost_km_kb);
      } else {
        multi_median.push_back(med);
        multi_cost.push_back(r.traffic.cost_km_kb);
      }
    }
  }
  table.print(std::cout);

  util::ShapeCheck check("fig18");
  check.expect_greater(uni_median.back(), uni_median.front(),
                       "(a) unicast inconsistency rises with end-user TTL");
  check.expect_greater(multi_median.back(), multi_median.front(),
                       "(a) multicast inconsistency rises with end-user TTL");
  check.expect_less(uni_cost.back(), uni_cost.front(),
                    "(b) unicast cost falls with end-user TTL");
  check.expect_less(multi_cost.back(), multi_cost.front(),
                    "(b) multicast cost falls with end-user TTL");
  obs.write_direct();
  return bench::finish(check);
}
