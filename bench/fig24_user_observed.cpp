// Figure 24: percentage of user observations showing content older than
// content the user already saw, under the adversarial scenario where every
// successive visit lands on a different server.
//
// Paper findings: TTL ~ Hybrid > HAT > Self > Push ~ Invalidation ~ 0, and
// the TTL-family fractions fall as the end-user TTL grows toward the
// content-server TTL.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 24: user-observed inconsistency (server switch per visit)");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  const auto systems = bench::section5_systems();

  std::vector<std::string> header{"user_ttl_s"};
  for (const auto& s : systems) header.push_back(s.name);
  util::TextTable table(header);
  std::vector<double> user_ttls{10, 20, 30, 40, 50, 60};
  if (flags.small()) user_ttls = {10, 30, 60};
  std::vector<double> at10(systems.size());
  std::vector<double> at60(systems.size());
  for (double user_ttl : user_ttls) {
    std::vector<double> row{user_ttl};
    for (std::size_t i = 0; i < systems.size(); ++i) {
      auto ec = bench::section5_config(systems[i].method, systems[i].infra);
      ec.user_poll_period_s = user_ttl;
      ec.user_start_window_s = user_ttl;
      ec.user_attachment = consistency::UserAttachment::kSwitchEveryVisit;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add("user_ttl=" + util::format_double(user_ttl, 0) + "/" +
                  systems[i].name,
              r);
      row.push_back(r.user_observed_inconsistency_fraction);
      if (user_ttl == 10) at10[i] = r.user_observed_inconsistency_fraction;
      if (user_ttl == 60) at60[i] = r.user_observed_inconsistency_fraction;
    }
    table.add_row(row, 4);
  }
  table.print(std::cout);

  // Indices: 0 Push, 1 Invalidation, 2 TTL, 3 Self, 4 Hybrid, 5 HAT.
  util::ShapeCheck check("fig24");
  check.expect_less(at10[0], 0.01, "Push ~ 0");
  check.expect_less(at10[1], 0.01, "Invalidation ~ 0");
  check.expect_greater(at10[2], at10[5], "TTL > HAT");
  check.expect_greater(at10[5], at10[3], "HAT > Self");
  check.expect_greater(at10[3], at10[1], "Self > Invalidation");
  check.expect_near(at10[2], at10[4], 0.5, "TTL ~ Hybrid");
  check.expect_less(at60[2], at10[2],
                    "TTL-family fraction falls as end-user TTL grows");
  obs.write_direct();
  return bench::finish(check);
}
