// Extension experiment: the object catalog at scale (ROADMAP item 1).
//
// The paper measures one live page replicated to every server. This sweep
// generalizes it: a Zipf catalog placed by the consistent-hash ring, with
// per-object replica counts set by an adaptive policy (Leconte et al.,
// "Adaptive Replication in Distributed CDNs" — PAPERS.md), each update
// method propagating per object to that object's replica set only. The
// grid is replica budget x policy x method; the curves show how each
// method's inconsistency and traffic respond to replication degree:
//
//  * traffic grows with the replica budget for every method (more copies =
//    more maintenance messages, the adaptive policies' fundamental cost);
//  * Push pays for replicas in freshness too — more copies deepen the
//    provider's fanout queue, so its inconsistency climbs with the budget
//    (fig20's network-size effect, now per object);
//  * TTL stays essentially flat — polls spread over the TTL window, so
//    replication degree barely moves staleness;
//  * the paper's Fig. 16 ordering (Push fresher than Invalidation fresher
//    than TTL) survives the generalization at every budget.
//
// Determinism: output is byte-identical across --jobs (worker threads) and
// --shards (object lanes, split by ring position) — tier1.sh cmp's the
// --small artifacts across both axes.
#include <string>
#include <vector>

#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "core/catalog_run.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner(
      "Extension: catalog scale — replica policy x budget x method");

  // Catalog shape: --objects and --zipf-s set the popularity law,
  // --replicas pins a single replica budget (average copies per object)
  // instead of sweeping the default grid.
  const std::size_t objects =
      static_cast<std::size_t>(flags.get_int("objects", flags.small() ? 12 : 24));
  const double zipf_s = flags.get("zipf-s", 0.9);
  std::vector<double> budgets{1.0, 2.0, 4.0, 8.0};
  if (flags.small()) budgets = {1.0, 4.0};
  if (const double pinned = flags.get("replicas", 0.0); pinned > 0) {
    budgets = {pinned};
  }

  const std::size_t servers = static_cast<std::size_t>(
      flags.get_int("servers", flags.small() ? 40 : 120));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // --shards here selects the catalog's object-lane count (objects sort by
  // ring position and split into contiguous lanes; "auto" = hardware
  // threads), --jobs the worker threads driving the lanes. Both are pure
  // execution knobs: every accepted value produces byte-identical output.
  const int lanes = flags.shards(core::CatalogRunConfig::kAutoLanes);
  const std::size_t threads = flags.jobs();

  core::ScenarioConfig sc;
  sc.server_count = servers;
  sc.seed = 42;
  const auto scenario = core::build_scenario(sc);

  trace::GameTraceConfig game_cfg;
  game_cfg.bursty = false;
  if (flags.small()) {
    game_cfg.period_s = 800;
    game_cfg.break_s = 300;
  }
  util::Rng trace_rng(seed ^ 0x6a3e);
  const auto game = trace::generate_game_trace(game_cfg, trace_rng);

  const UpdateMethod methods[3] = {UpdateMethod::kPush,
                                   UpdateMethod::kInvalidation,
                                   UpdateMethod::kTtl};
  const char* method_names[3] = {"Push", "Invalidation", "TTL"};
  const cdn::ReplicaPolicy policies[2] = {cdn::ReplicaPolicy::kFixed,
                                          cdn::ReplicaPolicy::kProportional};

  bench::ObsSession obs(argc, argv, flags, seed);
  obs.set_shards(lanes == core::CatalogRunConfig::kAutoLanes
                     ? "catalog-lanes:auto"
                     : "catalog-lanes:" + std::to_string(lanes));

  // weighted inconsistency / traffic per [method][policy][budget].
  std::vector<std::vector<std::vector<double>>> incon(
      3, std::vector<std::vector<double>>(2));
  auto cost = incon;

  for (int m = 0; m < 3; ++m) {
    for (int p = 0; p < 2; ++p) {
      std::cout << "\n--- " << method_names[m] << " / "
                << to_string(policies[p]) << " replication, " << objects
                << " objects on " << servers << " servers ---\n";
      util::TextTable table({"budget", "replicas", "weighted_server_s",
                             "weighted_user_s", "cost_km_kb",
                             "update_msgs"});
      for (const double budget : budgets) {
        core::CatalogRunConfig cfg;
        cfg.catalog.object_count = objects;
        cfg.catalog.zipf_s = zipf_s;
        cfg.catalog.policy = policies[p];
        cfg.catalog.replica_budget = budget;
        // fig20's bandwidth-constrained regime: 100 KB packets on a
        // 100 Mbit/s uplink make provider fanout the binding resource, so
        // replica count has a freshness price, not just a traffic one.
        cfg.engine = bench::section4_config(methods[m],
                                            InfrastructureKind::kUnicast);
        cfg.engine.update_packet_kb = flags.get("packet", 100.0);
        cfg.engine.provider_uplink_kbps = flags.get("uplink", 12500.0);
        cfg.engine.server_uplink_kbps = cfg.engine.provider_uplink_kbps;
        cfg.engine.seed = seed;
        cfg.lanes = lanes;
        cfg.threads = threads;
        obs.configure(cfg.engine);

        const auto run = core::run_catalog(*scenario.nodes, game, cfg);

        const std::string label = std::string(method_names[m]) + "/" +
                                  std::string(to_string(policies[p])) +
                                  "/budget=" + util::format_double(budget, 0);
        // Artifact records: the hottest, a middle and the coldest object —
        // enough for the tier-1 byte-identity cmp without dumping the
        // whole catalog per grid point.
        for (const std::size_t idx :
             {std::size_t{0}, objects / 2, objects - 1}) {
          obs.add(label + "/obj" + std::to_string(idx),
                  run.objects[idx].sim);
        }

        incon[m][p].push_back(run.weighted_server_inconsistency_s);
        cost[m][p].push_back(run.traffic.cost_km_kb);
        table.add_row(
            std::vector<std::string>{
                util::format_double(budget, 0),
                std::to_string(run.total_replicas),
                util::format_double(run.weighted_server_inconsistency_s, 3),
                util::format_double(run.weighted_user_inconsistency_s, 3),
                util::format_double(run.traffic.cost_km_kb, 0),
                std::to_string(run.traffic.update_messages)});
      }
      table.print(std::cout);
    }
  }

  if (const std::string bench_json = flags.bench_json(); !bench_json.empty()) {
    // One aggregate record for the whole grid (perf provenance only; the
    // micro-benchmarks in micro_core.cpp carry the gated numbers).
    const std::string config =
        std::string(flags.small() ? "small" : "full") + "/objects=" +
        std::to_string(objects) + "/jobs=" + std::to_string(threads);
    bench::append_bench_record(bench_json, "ext_catalog_scale/grid", config,
                               0.0, 0.0);
  }

  util::ShapeCheck check("ext-catalog-scale");
  const std::size_t lo = 0;
  const std::size_t hi = budgets.size() - 1;
  if (hi > lo) {
    for (int m = 0; m < 3; ++m) {
      for (int p = 0; p < 2; ++p) {
        // Replica-count sensitivity, traffic side: every method pays for
        // copies; the curve must rise monotonically in the budget.
        bool monotone = true;
        for (std::size_t b = 0; b + 1 < budgets.size(); ++b) {
          monotone = monotone && cost[m][p][b] < cost[m][p][b + 1];
        }
        check.expect_greater(
            monotone ? 1.0 : 0.0, 0.5,
            std::string(method_names[m]) + "/" +
                std::string(to_string(policies[p])) +
                ": maintenance traffic rises with the replica budget");
      }
    }
    // Freshness side (proportional policy): Push pays for replicas in
    // staleness (provider fanout), TTL does not.
    const double push_growth = incon[0][1][hi] - incon[0][1][lo];
    const double ttl_growth = incon[2][1][hi] - incon[2][1][lo];
    check.expect_greater(push_growth, ttl_growth,
                         "Push inconsistency grows faster with replication "
                         "than TTL's");
    check.expect_in_range(ttl_growth, -1.5, 1.5,
                          "TTL stays essentially flat across budgets");
  }
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    // The paper's Fig. 16 ordering survives the catalog generalization.
    check.expect_less(incon[0][1][b], incon[2][1][b],
                      "budget " + util::format_double(budgets[b], 0) +
                          ": Push stays fresher than TTL (proportional)");
  }
  obs.write_direct();
  return bench::finish(check);
}
