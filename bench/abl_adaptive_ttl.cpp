// Ablation: adaptive TTL vs the paper's self-adaptive method.
//
// Section 5.1 argues that adaptive-TTL schemes ([6][22][24]) "may reduce
// traffic costs as well as support stronger consistency" but depend on the
// update interval being predictable: "a large TTL will be reduced when an
// update occurs much earlier than expected. If all subsequent updates occur
// at much longer intervals, periodic polling will occur unnecessarily."
// This bench reproduces that argument with data: on a *regular* update
// process adaptive TTL is competitive, but on the irregular live-game
// process (bursts + silences) it both polls more and serves staler content
// than the self-adaptive switch, which reacts to the actual update/silence
// state instead of predicting intervals.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

namespace {

using namespace cdnsim;

struct Row {
  double staleness;
  double light_msgs;
};

Row run_one(const core::Scenario& scenario, const trace::UpdateTrace& updates,
            consistency::UpdateMethod method, bench::ObsSession& obs,
            const std::string& label) {
  auto ec = bench::section4_config(method,
                                   consistency::InfrastructureKind::kUnicast);
  obs.configure(ec);
  ec.method.server_ttl_s = 30.0;
  ec.method.adaptive_min_ttl_s = 5.0;
  ec.method.adaptive_max_ttl_s = 240.0;
  ec.users_per_server = 1;
  ec.tail_s = 300.0;
  const auto r = core::run_simulation(*scenario.nodes, updates, ec);
  obs.add(label, r);
  return {r.avg_server_inconsistency_s,
          static_cast<double>(r.traffic.light_messages)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Ablation: adaptive TTL vs self-adaptive (Sec 5.1 argument)");

  core::ScenarioConfig sc;
  sc.server_count = static_cast<std::size_t>(flags.get_int("servers", 100));
  if (flags.small()) sc.server_count = 40;
  const auto scenario = core::build_scenario(sc);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  // Regular process: update every 90 s like clockwork — the predictable
  // case adaptive TTL is built for.
  std::vector<sim::SimTime> regular_times;
  for (int i = 1; i <= 90; ++i) regular_times.push_back(i * 90.0);
  const trace::UpdateTrace regular(regular_times);

  // Irregular process: the bursty live game (bursts seconds apart, silences
  // of many minutes) — the paper's counterexample.
  util::Rng rng(13);
  const auto irregular = trace::generate_game_trace(trace::GameTraceConfig{}, rng);

  const UpdateMethod methods[3] = {UpdateMethod::kTtl, UpdateMethod::kAdaptiveTtl,
                                   UpdateMethod::kSelfAdaptive};
  const char* names[3] = {"TTL(30s)", "AdaptiveTTL", "SelfAdaptive"};

  Row regular_rows[3];
  Row irregular_rows[3];
  for (int m = 0; m < 3; ++m) {
    regular_rows[m] = run_one(scenario, regular, methods[m], obs,
                              std::string("regular/") + names[m]);
    irregular_rows[m] = run_one(scenario, irregular, methods[m], obs,
                                std::string("irregular/") + names[m]);
  }

  for (int which = 0; which < 2; ++which) {
    const Row* rows = which == 0 ? regular_rows : irregular_rows;
    std::cout << "\n--- " << (which == 0 ? "regular updates (every 90 s)"
                                         : "irregular updates (live game)")
              << " ---\n";
    util::TextTable table({"method", "avg_staleness_s", "poll/notice_msgs"});
    for (int m = 0; m < 3; ++m) {
      table.add_row(std::vector<std::string>{
          names[m], util::format_double(rows[m].staleness, 2),
          util::format_double(rows[m].light_msgs, 0)});
    }
    table.print(std::cout);
  }

  util::ShapeCheck check("abl-adaptive-ttl");
  // Regular case: prediction works — adaptive TTL serves fresher content
  // than the fixed TTL (it polls densely right after each expected update).
  check.expect_less(regular_rows[1].staleness, regular_rows[0].staleness,
                    "regular updates: adaptive TTL beats fixed TTL on staleness");
  // Irregular case: prediction fails — a TTL stretched through a silence
  // misses the next burst, blowing past the fixed-TTL staleness bound
  // (the Section 5.1 argument).
  check.expect_greater(irregular_rows[1].staleness,
                       1.5 * irregular_rows[0].staleness,
                       "irregular updates: adaptive TTL overshoots staleness");
  // The self-adaptive switch reacts to the actual silence instead of
  // predicting it: far fresher than adaptive TTL at comparable message cost.
  check.expect_less(irregular_rows[2].staleness,
                    0.5 * irregular_rows[1].staleness,
                    "irregular updates: self-adaptive is far fresher");
  check.expect_less(irregular_rows[2].light_msgs,
                    1.25 * irregular_rows[1].light_msgs,
                    "irregular updates: at comparable polling cost");
  obs.write_direct();
  return bench::finish(check);
}
