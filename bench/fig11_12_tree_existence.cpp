// Figures 11 & 12: multicast-tree (non-)existence tests.
//  11(a,b) — per-cluster average inconsistency varies greatly day to day
//            (no static inter-cluster tree);
//  11(c,d) — per-server ranks inside a cluster churn across days
//            (no static intra-cluster tree);
//  12(a,b) — most servers' per-day maximum inconsistency is below one TTL
//            (contradicts a multicast tree, whose deeper layers would
//            exceed it).
#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figures 11-12: is there a multicast update tree?");

  auto cfg = bench::measurement_config(flags);
  bench::ObsSession obs(argc, argv, flags, cfg.seed);
  cfg.record_trace_events = obs.trace_enabled();
  const bench::WallTimer timer;
  const auto results = core::run_measurement_study(cfg);
  std::cout << "study: " << cfg.days << " day(s) on "
            << (cfg.threads == 0 ? "all" : std::to_string(cfg.threads))
            << " thread(s): " << util::format_double(timer.seconds(), 2)
            << " s wall\n";
  const std::size_t days = results.daily_cluster_avg.size();

  std::cout << "\n--- Fig 11(a): per-cluster min/max of daily averages ---\n";
  const std::size_t n_clusters = results.geo_clusters.cluster_count();
  util::TextTable minmax({"cluster", "min_avg_s", "max_avg_s", "spread"});
  std::size_t printed = 0;
  std::vector<double> spreads;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    if (results.geo_clusters.members[c].size() < 3) continue;
    double lo = 1e18, hi = -1e18;
    for (std::size_t d = 0; d < days; ++d) {
      lo = std::min(lo, results.daily_cluster_avg[d][c]);
      hi = std::max(hi, results.daily_cluster_avg[d][c]);
    }
    spreads.push_back(hi - lo);
    if (printed < 20) {
      minmax.add_row({static_cast<double>(c), lo, hi, hi - lo}, 2);
      ++printed;
    }
  }
  minmax.print(std::cout);

  std::cout << "\n--- Fig 11(b): cluster rank instability across days ---\n";
  // Restrict the matrix to populated clusters.
  std::vector<std::vector<double>> cluster_matrix(days);
  for (std::size_t d = 0; d < days; ++d) {
    for (std::size_t c = 0; c < n_clusters; ++c) {
      if (results.geo_clusters.members[c].size() < 3) continue;
      cluster_matrix[d].push_back(results.daily_cluster_avg[d][c]);
    }
  }
  const double cluster_instability = analysis::rank_instability(cluster_matrix);
  std::cout << "normalized day-to-day rank change (clusters): "
            << cluster_instability << "   (static tree would be ~0)\n";

  std::cout << "\n--- Fig 11(c,d): per-server rank churn within clusters ---\n";
  // Pick the two largest clusters (the paper's clusters A and B).
  std::size_t cluster_a = 0, cluster_b = 0;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    const auto size = results.geo_clusters.members[c].size();
    if (size > results.geo_clusters.members[cluster_a].size()) {
      cluster_b = cluster_a;
      cluster_a = c;
    } else if (c != cluster_a &&
               size > results.geo_clusters.members[cluster_b].size()) {
      cluster_b = c;
    }
  }
  double server_instability_sum = 0;
  int measured_clusters = 0;
  for (std::size_t cluster : {cluster_a, cluster_b}) {
    const auto& members = results.geo_clusters.members[cluster];
    if (members.size() < 4) continue;
    std::vector<std::vector<double>> per_day(days);
    for (std::size_t d = 0; d < days; ++d) {
      for (auto s : members) {
        per_day[d].push_back(
            results.daily_server_avg[d][static_cast<std::size_t>(s)]);
      }
    }
    const double inst = analysis::rank_instability(per_day);
    std::cout << "cluster " << cluster << " (" << members.size()
              << " servers): rank instability " << inst << "\n";
    server_instability_sum += inst;
    ++measured_clusters;
  }

  std::cout << "\n--- Fig 12: CDF of per-server max inconsistency (two days) ---\n";
  util::TextTable fig12({"day", "fraction_below_ttl(60s)"});
  std::vector<double> fractions;
  for (std::size_t d = 0; d < std::min<std::size_t>(days, 2); ++d) {
    const double f = analysis::fraction_below_ttl(results.daily_server_max[d], 60.0);
    fig12.add_row({static_cast<double>(d + 1), f}, 3);
    fractions.push_back(f);
  }
  fig12.print(std::cout);

  util::ShapeCheck check("fig11-12");
  check.expect_greater(util::mean(spreads), 3.0,
                       "11(a) cluster averages vary a lot across days");
  check.expect_greater(cluster_instability, 0.08,
                       "11(b) no stable inter-cluster hierarchy");
  if (measured_clusters > 0) {
    check.expect_greater(server_instability_sum / measured_clusters, 0.08,
                         "11(c,d) per-server ranks churn inside clusters");
  }
  for (double f : fractions) {
    check.expect_greater(f, 0.5,
                         "12: majority of servers' max inconsistency < TTL");
  }
  check.expect(true,
               "conclusion: servers poll the provider directly (unicast + TTL)",
               "all tree signatures absent");
  obs.write_study("fig11_12", results.metrics, &results.trace);
  return bench::finish(check);
}
