// Shared support for the figure-reproduction binaries.
//
// Every bench binary prints:
//   1. a banner naming the paper figure(s) it regenerates,
//   2. the figure's data series as aligned tables (the same rows the paper
//      plots),
//   3. a shape-check block asserting the paper's qualitative findings.
// Exit status is non-zero when a shape check fails, so a plain
// `for b in build/bench/*; do $b; done` doubles as a reproduction report.
#pragma once

#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "util/cdf.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace cdnsim::bench {

/// Whole-string numeric parse (std::from_chars): rejects empty cells,
/// non-numeric text and trailing garbage ("12abc"), and never throws —
/// callers report the offending flag themselves.
template <typename T>
bool parse_number(const std::string& raw, T& out) {
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), out);
  return ec == std::errc{} && ptr == raw.data() + raw.size();
}

/// Hard usage error naming the malformed flag (exit 2): a typo'd value
/// silently falling back to a default would invalidate an A/B run.
[[noreturn]] inline void flag_usage_error(const std::string& key,
                                          const std::string& raw,
                                          const std::string& expected) {
  std::cerr << "error: --" << key << " expects " << expected << ", got '"
            << raw << "'\n";
  std::exit(2);
}

/// Minimal --flag value parser: `Flags f(argc, argv); f.get("days", 15)`.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      if (key == "--small") {  // boolean: consumes no value
        small_ = true;
        continue;
      }
      if (key == "--large") {  // boolean: consumes no value
        large_ = true;
        continue;
      }
      if (key.rfind("--", 0) == 0 && i + 1 < argc) {
        values_.emplace_back(key.substr(2), argv[i + 1]);
        ++i;
        continue;
      }
      // Older bench invocations passed bare `key value` pairs; those now fall
      // through to here. Warn instead of silently running with defaults.
      std::cerr << "warning: ignoring argument '" << key
                << "' (expected --key value pairs or --small)\n";
    }
  }

  /// True when invoked with --small (used by CI-style quick runs).
  bool small() const { return small_; }

  /// True when invoked with --large (opt-in scaled-up grids; fig20 sweeps
  /// network sizes to 10x the paper's maximum).
  bool large() const { return large_; }

  /// `--jobs N`: worker threads for batch execution. N = 0 selects the
  /// hardware concurrency; the default is 1 (serial), so timing baselines
  /// stay comparable. Results are identical for every N — the batch runner
  /// derives each job's RNG stream from its submission index, not from
  /// scheduling.
  std::size_t jobs() const {
    const std::int64_t n = get_int("jobs", 1);
    if (n <= 0) return util::ThreadPool::hardware_threads();
    return static_cast<std::size_t>(n);
  }

  std::string get_str(const std::string& key, const std::string& fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return v;
    }
    return fallback;
  }

  /// `--bench-json PATH`: when non-empty, bench binaries append one JSON
  /// record per benchmark to PATH (see append_bench_record). Empty = off.
  std::string bench_json() const { return get_str("bench-json", ""); }

  /// `--metrics-out PATH`: write one JSONL metrics record per batch job
  /// (sim-time derived, byte-identical for any --jobs N). Empty = off.
  std::string metrics_out() const { return get_str("metrics-out", ""); }

  /// `--trace-out PATH`: write a Chrome trace-event JSON file (load in
  /// chrome://tracing or Perfetto; pid = job index, tid = node id).
  std::string trace_out() const { return get_str("trace-out", ""); }

  /// `--csv-out PATH`: write a per-job summary CSV (RFC 4180 quoted).
  std::string csv_out() const { return get_str("csv-out", ""); }

  /// `--profile-out PATH`: write the hierarchical profiler report —
  /// PATH (JSON, deterministic scope counts + host wall section) plus a
  /// collapsed-stack sibling (PATH with .json -> .folded) for
  /// flamegraph.pl / speedscope. Batch binaries only. Empty = off.
  std::string profile_out() const { return get_str("profile-out", ""); }

  /// `--heartbeat SECS`: opt-in batch progress heartbeat — one stderr line
  /// every SECS seconds (jobs done, events/s, ETA, steal count; plus
  /// per-lane events/s and merge-queue depth for sharded jobs). 0 = off.
  double heartbeat() const { return get("heartbeat", 0.0); }

  /// `--timeseries-out PATH`: write the time-resolved telemetry artifact —
  /// per-run deterministic sample rows/spans (byte-identical across
  /// --jobs/--shards) plus a host-only shard-health section — and a
  /// long-form CSV sibling (PATH with .json -> .csv). Empty = off.
  std::string timeseries_out() const { return get_str("timeseries-out", ""); }

  /// `--sample-s SECS`: sampling interval of --timeseries-out. Must be a
  /// positive number; anything else is a hard usage error (exit 2) — an
  /// interval of 0 would loop the sampler forever on one grid point.
  double sample_s(double fallback) const {
    const std::string raw = get_str("sample-s", "");
    if (raw.empty()) return fallback;
    double v = 0;
    if (!parse_number(raw, v) || !(v > 0) ||
        !(v < std::numeric_limits<double>::infinity())) {
      flag_usage_error("sample-s", raw, "a positive number of seconds");
    }
    return v;
  }

  /// `--shards auto|N`: lane count for the engine's intra-run sharded
  /// driver. "auto" picks per job from the server count and hardware
  /// threads (ShardConfig::kAuto); N >= 1 forces that many lanes. Output is
  /// byte-identical for every accepted value. Anything else — 0, negative,
  /// non-numeric, trailing garbage — is a hard usage error (exit 2): a
  /// typo'd shard count silently running classic would invalidate an A/B.
  int shards(int fallback) const {
    const std::string raw = get_str("shards", "");
    if (raw.empty()) return fallback;
    if (raw == "auto") return consistency::EngineConfig::ShardConfig::kAuto;
    long long n = 0;
    if (!parse_number(raw, n) || n < 1) {
      flag_usage_error("shards", raw, "'auto' or an integer >= 1");
    }
    return static_cast<int>(n);
  }

  /// `--epoch-s SECS`: barrier pitch of the sharded driver. Must be a
  /// positive number; anything else is a hard usage error (exit 2) — an
  /// epoch of 0 would spin the driver forever on the same grid point.
  double epoch_s(double fallback) const {
    const std::string raw = get_str("epoch-s", "");
    if (raw.empty()) return fallback;
    double v = 0;
    if (!parse_number(raw, v) || !(v > 0) ||
        !(v < std::numeric_limits<double>::infinity())) {
      flag_usage_error("epoch-s", raw, "a positive number of seconds");
    }
    return v;
  }

  double get(const std::string& key, double fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) {
        double out = 0;
        if (!parse_number(v, out)) flag_usage_error(key, v, "a number");
        return out;
      }
    }
    return fallback;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) {
        std::int64_t out = 0;
        if (!parse_number(v, out)) flag_usage_error(key, v, "an integer");
        return out;
      }
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
  bool small_ = false;
  bool large_ = false;
};

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Prints a CDF as (x, CDF) rows at the given x positions.
inline void print_cdf(const std::string& name, const util::Cdf& cdf,
                      const std::vector<double>& xs) {
  util::TextTable table({name, "CDF"});
  for (const auto& p : cdf.points_at(xs)) {
    table.add_row(std::vector<double>{p.x, p.cdf}, 3);
  }
  table.print(std::cout);
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Appends one machine-readable benchmark record to `path` (JSON lines —
/// one object per line, so successive runs accumulate a history):
///   {"bench": "...", "config": "...", "wall_s": ..., "items_per_s": ...}
/// `wall_s` is the wall-clock seconds per iteration (or per whole run for
/// aggregate records); `items_per_s` is 0 when the bench reports no item
/// throughput. Used to track before/after numbers for performance PRs.
inline void append_bench_record(const std::string& path,
                                const std::string& bench,
                                const std::string& config, double wall_s,
                                double items_per_s) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::cerr << "warning: cannot open bench-json file '" << path << "'\n";
    return;
  }
  std::ostringstream line;
  line.precision(12);
  line << "{\"bench\": \"" << json_escape(bench) << "\", \"config\": \""
       << json_escape(config) << "\", \"wall_s\": " << wall_s
       << ", \"items_per_s\": " << items_per_s << "}";
  out << line.str() << '\n';
}

/// Wall-clock stopwatch for batch speedup reporting.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Runs a batch, aborts loudly if any job failed, and prints the per-job and
/// aggregate wall-clock report: `speedup` is (sum of per-job wall clocks) /
/// (batch wall clock), i.e. how much the pool beat a serial loop of the same
/// jobs on this host.
inline std::vector<core::BatchResult> run_batch_reported(
    const core::BatchRunner& runner, const std::vector<core::BatchJob>& jobs,
    bool per_job_table = false, core::BatchRunStats* stats = nullptr) {
  const WallTimer timer;
  auto results = runner.run(jobs, stats);
  const double batch_wall = timer.seconds();
  double serial_wall = 0;
  for (const auto& r : results) {
    if (!r.ok()) {
      std::cerr << "batch job '" << r.label << "' failed: " << r.error << "\n";
      std::exit(2);
    }
    serial_wall += r.wall_s;
  }
  if (per_job_table) {
    util::TextTable table({"job", "wall_s"});
    for (const auto& r : results) {
      table.add_row(
          std::vector<std::string>{r.label, util::format_double(r.wall_s, 3)});
    }
    table.print(std::cout);
  }
  std::cout << "batch: " << jobs.size() << " jobs on " << runner.threads()
            << " thread(s): " << util::format_double(batch_wall, 2)
            << " s wall (sum of jobs " << util::format_double(serial_wall, 2)
            << " s, speedup " << util::format_double(serial_wall / batch_wall, 2)
            << "x)\n";
  return results;
}

/// Applies the --shards/--epoch-s selection (Flags::shards()/epoch_s()) to
/// every batch job whose configuration supports the sharded driver; the
/// rest stay on classic execution (e.g. churn sweeps, trace-recording
/// runs). Call AFTER ObsSession::apply() — tracing flips jobs to
/// unsupported. Returns a human-readable summary ("auto:2-4, 18/18 jobs")
/// for the run manifest, so an artifact records which lane counts actually
/// ran. Byte-identity contract: metrics/csv are identical for every
/// accepted --shards value, so the summary is provenance, not config.
inline std::string apply_shard_flags(std::vector<core::BatchJob>& jobs,
                                     int shards, double epoch_s) {
  constexpr int kAuto = consistency::EngineConfig::ShardConfig::kAuto;
  std::size_t applied = 0;
  int resolved_lo = std::numeric_limits<int>::max();
  int resolved_hi = 0;
  for (core::BatchJob& job : jobs) {
    job.engine.shard.epoch_s = epoch_s;
    const std::size_t servers =
        job.shared_nodes != nullptr ? job.shared_nodes->server_count() : 0;
    // Gate on config-level support (explicit counts would trip the engine's
    // sharding preconditions on an unsupported job; auto would not, but the
    // summary should still count the job as degraded-to-classic).
    if (!consistency::shard_supported(job.engine)) {
      job.engine.shard.shards = 0;
      continue;
    }
    job.engine.shard.shards = shards;
    const int resolved =
        consistency::resolved_shard_count(job.engine, servers);
    resolved_lo = std::min(resolved_lo, resolved);
    resolved_hi = std::max(resolved_hi, resolved);
    ++applied;
  }
  std::string summary = shards == kAuto ? "auto" : std::to_string(shards);
  if (shards == kAuto && applied > 0) {
    summary += ":" + std::to_string(resolved_lo);
    if (resolved_hi != resolved_lo) summary += "-" + std::to_string(resolved_hi);
  }
  summary += ", " + std::to_string(applied) + "/" +
             std::to_string(jobs.size()) + " jobs";
  return summary;
}

/// Prints the check block and returns the process exit code.
inline int finish(const util::ShapeCheck& check) {
  std::cout << '\n';
  check.print(std::cout);
  return check.all_passed() ? 0 : 1;
}

}  // namespace cdnsim::bench
