// Shared support for the figure-reproduction binaries.
//
// Every bench binary prints:
//   1. a banner naming the paper figure(s) it regenerates,
//   2. the figure's data series as aligned tables (the same rows the paper
//      plots),
//   3. a shape-check block asserting the paper's qualitative findings.
// Exit status is non-zero when a shape check fails, so a plain
// `for b in build/bench/*; do $b; done` doubles as a reproduction report.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "util/cdf.hpp"
#include "util/table.hpp"

namespace cdnsim::bench {

/// Minimal --flag value parser: `Flags f(argc, argv); f.get("days", 15)`.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      values_.emplace_back(key, argv[i + 1]);
    }
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--small") small_ = true;
    }
  }

  /// True when invoked with --small (used by CI-style quick runs).
  bool small() const { return small_; }

  double get(const std::string& key, double fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return std::stod(v);
    }
    return fallback;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return std::stoll(v);
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
  bool small_ = false;
};

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Prints a CDF as (x, CDF) rows at the given x positions.
inline void print_cdf(const std::string& name, const util::Cdf& cdf,
                      const std::vector<double>& xs) {
  util::TextTable table({name, "CDF"});
  for (const auto& p : cdf.points_at(xs)) {
    table.add_row(std::vector<double>{p.x, p.cdf}, 3);
  }
  table.print(std::cout);
}

/// Prints the check block and returns the process exit code.
inline int finish(const util::ShapeCheck& check) {
  std::cout << '\n';
  check.print(std::cout);
  return check.all_passed() ? 0 : 1;
}

}  // namespace cdnsim::bench
