// Figure 7: inconsistency of data served by the content provider directly.
//
// Paper findings: 90.2% of provider-served requests are under 10 s of
// inconsistency, only 1.2% exceed 50 s, average 3.43 s — negligible next to
// the CDN-served inconsistency of Fig. 3.
#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 7: inconsistency of data served by the provider");

  auto cfg = bench::measurement_config(flags, 300, 6);
  bench::ObsSession obs(argc, argv, flags, cfg.seed);
  cfg.record_trace_events = obs.trace_enabled();
  const auto results = core::run_measurement_study(cfg);

  // Like Fig. 3, the figure plots the requests that observed outdated
  // content; fresh requests are the complement.
  std::vector<double> positive;
  for (double x : results.provider_request_inconsistency) {
    if (x > 0) positive.push_back(x);
  }
  const double stale_share = static_cast<double>(positive.size()) /
                             static_cast<double>(
                                 results.provider_request_inconsistency.size());
  util::Cdf cdf(positive);
  bench::print_cdf("inconsistency_s", cdf, {1, 2, 5, 10, 20, 50});
  std::cout << "\nstale requests: " << 100.0 * stale_share
            << "%  mean staleness=" << cdf.mean() << "s  (paper: 3.43 s)\n";

  util::ShapeCheck check("fig7");
  check.expect_greater(cdf.fraction_at_or_below(10.0), 0.85,
                       "~90% of provider requests below 10 s");
  check.expect_less(1.0 - cdf.fraction_at_or_below(50.0), 0.05,
                    "almost none exceed 50 s");
  check.expect_in_range(cdf.mean(), 1.0, 6.0, "mean origin staleness ~3.4 s");
  check.expect_less(cdf.mean(), 0.3 * results.overall_avg_request_inconsistency,
                    "provider is far more consistent than the CDN (vs Fig 3)");
  obs.write_study("fig07", results.metrics, &results.trace);
  return bench::finish(check);
}
