// Micro-benchmarks (google-benchmark) for the hot substrate paths: the
// event queue, the latency model, the Hilbert encoder, tree construction,
// and a whole small engine run. These bound the cost of scaling the
// simulator toward the paper's 3000-server crawl.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cdn/ring.hpp"
#include "consistency/engine.hpp"
#include "core/catalog_run.hpp"
#include "core/scenario.hpp"
#include "net/latency_model.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "pubsub/pubsub.hpp"
#include "sim/shard_merge.hpp"
#include "sim/simulator.hpp"
#include "trace/update_trace.hpp"
#include "topology/hilbert.hpp"
#include "topology/multicast_tree.hpp"
#include "trace/game_generator.hpp"

namespace {

using namespace cdnsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      simulator.at(static_cast<double>((i * 7919) % n), [&sink] { ++sink; });
    }
    simulator.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_HaversineLatency(benchmark::State& state) {
  const net::LatencyModel model(net::LatencyConfig{});
  const net::GeoPoint a{33.75, -84.39};
  const net::GeoPoint b{35.68, 139.69};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.propagation(a, b));
  }
}
BENCHMARK(BM_HaversineLatency);

// A primed site set shaped like the engine's: a provider plus ~1000 servers
// at arbitrary coordinates. The queried pair sits mid-set so the hash path
// (not a lucky first probe) is what gets measured.
std::vector<net::GeoPoint> primed_sites() {
  util::Rng rng(11);
  std::vector<net::GeoPoint> sites;
  sites.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    sites.push_back({rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)});
  }
  return sites;
}

void BM_HaversineLatencyPrimed(benchmark::State& state) {
  net::LatencyModel model(net::LatencyConfig{});
  const auto sites = primed_sites();
  model.prime(sites);
  const net::GeoPoint a = sites[17];
  const net::GeoPoint b = sites[911];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.propagation(a, b));
  }
}
BENCHMARK(BM_HaversineLatencyPrimed);

void BM_HaversineLatencyPrimedIndexed(benchmark::State& state) {
  net::LatencyModel model(net::LatencyConfig{});
  model.prime(primed_sites());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.propagation_between(17, 911));
  }
}
BENCHMARK(BM_HaversineLatencyPrimedIndexed);

void BM_HilbertNumber(benchmark::State& state) {
  const net::GeoPoint p{48.86, 2.35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::hilbert_number(p, 16));
  }
}
BENCHMARK(BM_HilbertNumber);

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ScenarioConfig sc;
  sc.server_count = n;
  const auto scenario = core::build_scenario(sc);
  for (auto _ : state) {
    topology::MulticastTree tree(*scenario.nodes, 4);
    tree.build(scenario.nodes->server_ids());
    benchmark::DoNotOptimize(tree.max_depth());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeBuild)->Arg(170)->Arg(850);

void BM_EngineGameDay(benchmark::State& state) {
  core::ScenarioConfig sc;
  sc.server_count = static_cast<std::size_t>(state.range(0));
  const auto scenario = core::build_scenario(sc);
  trace::GameTraceConfig game_cfg;
  game_cfg.period_s = 600;
  game_cfg.break_s = 200;
  util::Rng rng(3);
  const auto game = trace::generate_game_trace(game_cfg, rng);
  for (auto _ : state) {
    sim::Simulator simulator;
    consistency::EngineConfig ec;
    ec.method.method = consistency::UpdateMethod::kTtl;
    consistency::UpdateEngine engine(simulator, *scenario.nodes, game, ec);
    engine.run();
    benchmark::DoNotOptimize(simulator.events_processed());
    state.counters["events"] = static_cast<double>(simulator.events_processed());
  }
}
BENCHMARK(BM_EngineGameDay)->Arg(50)->Arg(170)->Unit(benchmark::kMillisecond);

// ~100k batched user visits against a sparse trace: the visit walk (not
// update propagation) dominates, so this isolates the sim.visit_batch path
// the batched engine replaced per-visit events with. 1000 users polling
// every 10 s over ~1080 s of simulated time = ~108k visits per iteration.
void BM_VisitBatch(benchmark::State& state) {
  core::ScenarioConfig sc;
  sc.server_count = 100;
  const auto scenario = core::build_scenario(sc);
  const trace::UpdateTrace updates(
      std::vector<sim::SimTime>{100.0, 500.0, 900.0});
  std::uint64_t visits = 0;
  for (auto _ : state) {
    sim::Simulator simulator;
    consistency::EngineConfig ec;
    ec.method.method = consistency::UpdateMethod::kTtl;
    ec.users_per_server = 10;
    ec.user_poll_period_s = 10.0;
    consistency::UpdateEngine engine(simulator, *scenario.nodes, updates, ec);
    engine.run();
    obs::MetricsRegistry m = engine.metrics();  // registry is copyable
    visits = m.counter("engine.user_visits").value;
    benchmark::DoNotOptimize(visits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(visits));
  state.counters["visits"] = static_cast<double>(visits);
}
BENCHMARK(BM_VisitBatch)->Name("visit_batch_100k")->Unit(benchmark::kMillisecond);

// 100k cross-lane messages through the overlapped pipeline's staging
// protocol: emit into 8 per-lane rows, flip the generations, and consume
// the 8 sorted per-target columns — the exact per-round sequence the
// pipelined sharded driver runs between epochs. Bounds the merge-queue cost
// of pushing cross-lane traffic at thousands-of-servers scale.
void BM_ShardMergeDrain(benchmark::State& state) {
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kMessages = 100000;
  // One pre-built population, re-emitted every iteration: the queue is the
  // thing under test, not the message construction.
  struct Proto {
    double arrival;
    std::int32_t sender;
    std::uint64_t seq;
    std::uint32_t target;
  };
  std::vector<Proto> protos;
  protos.reserve(kMessages);
  {
    util::Rng rng(0x5A4D);
    std::vector<std::uint64_t> next_seq(64, 0);
    for (std::size_t i = 0; i < kMessages; ++i) {
      const auto sender = static_cast<std::int32_t>(rng.index(64));
      protos.push_back({static_cast<double>(rng.index(32)) * 0.25, sender,
                        next_seq[static_cast<std::size_t>(sender)]++,
                        static_cast<std::uint32_t>(rng.index(kLanes))});
    }
  }
  std::size_t consumed = 0;
  for (auto _ : state) {
    sim::ShardMergeQueue queue(kLanes);
    for (std::size_t i = 0; i < kMessages; ++i) {
      sim::ShardMergeQueue::Message m;
      m.arrival = protos[i].arrival;
      m.sender = protos[i].sender;
      m.seq = protos[i].seq;
      m.target_lane = protos[i].target;
      queue.emit(i % kLanes, std::move(m));
    }
    queue.flip();
    consumed = 0;
    for (std::size_t t = 0; t < kLanes; ++t) {
      consumed += queue.take_incoming(t).size();
    }
    benchmark::DoNotOptimize(consumed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(consumed));
}
BENCHMARK(BM_ShardMergeDrain)
    ->Name("shard_merge_drain_100k")
    ->Unit(benchmark::kMillisecond);

// 100k replica-set lookups on the placement ring (170 servers x 64 vnodes,
// the paper-scale CDN): the per-object cost the catalog layer pays before
// any simulation runs. Bounds placement overhead at million-object scale.
void BM_RingLookup(benchmark::State& state) {
  cdn::ConsistentHashRing ring(64);
  for (topology::NodeId s = 0; s < 170; ++s) ring.add_server(s);
  constexpr std::size_t kLookups = 100000;
  std::size_t sink = 0;
  for (auto _ : state) {
    sink = 0;
    for (std::uint64_t k = 0; k < kLookups; ++k) {
      sink += ring.replicas_for(cdn::object_point(k), 3).size();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLookups));
}
BENCHMARK(BM_RingLookup)
    ->Name("ring_lookup_100k")
    ->Unit(benchmark::kMillisecond);

// A whole small catalog run: 12 Zipf objects, proportional replication,
// TTL maintenance on 40 servers — the ext_catalog_scale --small workload's
// unit grid point, serial lanes. Bounds the per-grid-point cost of the
// catalog sweeps.
void BM_CatalogSmall(benchmark::State& state) {
  core::ScenarioConfig sc;
  sc.server_count = 40;
  const auto scenario = core::build_scenario(sc);
  trace::GameTraceConfig game_cfg;
  game_cfg.period_s = 600;
  game_cfg.break_s = 200;
  util::Rng rng(3);
  const auto game = trace::generate_game_trace(game_cfg, rng);
  core::CatalogRunConfig cfg;
  cfg.catalog.object_count = 12;
  cfg.catalog.policy = cdn::ReplicaPolicy::kProportional;
  cfg.catalog.replica_budget = 4.0;
  cfg.engine.method.method = consistency::UpdateMethod::kTtl;
  cfg.lanes = 1;
  cfg.threads = 1;
  for (auto _ : state) {
    const auto run = core::run_catalog(*scenario.nodes, game, cfg);
    benchmark::DoNotOptimize(run.events_processed);
    state.counters["events"] = static_cast<double>(run.events_processed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 12);
}
BENCHMARK(BM_CatalogSmall)
    ->Name("catalog_small")
    ->Unit(benchmark::kMillisecond);

// 100k sampler rollups on an engine-shaped column set (~54 series): stage
// every column, then take_sample — the per-interval work sample_timeseries()
// adds on top of the engine's own state scan. Bounds the --timeseries-out
// cost of sampling at second resolution over long horizons.
void BM_TimeSeriesSample(benchmark::State& state) {
  constexpr std::size_t kSamples = 100000;
  std::size_t rows = 0;
  for (auto _ : state) {
    obs::TimeSeries ts(1.0);
    std::vector<obs::SeriesId> deltas;
    std::vector<obs::SeriesId> gauges;
    for (int i = 0; i < 40; ++i) {
      deltas.push_back(ts.add_delta("d" + std::to_string(i)));
    }
    for (int i = 0; i < 14; ++i) {
      gauges.push_back(ts.add_gauge("g" + std::to_string(i)));
    }
    double running = 0;
    for (std::size_t s = 0; s < kSamples; ++s) {
      for (const obs::SeriesId id : deltas) ts.stage(id, running += 1.0);
      for (const obs::SeriesId id : gauges) {
        ts.stage(id, static_cast<double>(s % 7));
      }
      ts.take_sample();
    }
    rows = ts.row_count();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSamples));
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_TimeSeriesSample)
    ->Name("timeseries_sample_100k")
    ->Unit(benchmark::kMillisecond);

// One full fan-out round trip over a million-subscriber topic: publish a
// sequence through the credit-window walker, settle every live delivery,
// then publish again so half the credits are busy and the walker takes the
// suppress-and-mark-lagging path too. Pure pubsub state machine — no events,
// no transport — so this bounds the per-copy bookkeeping cost the delivery
// layer adds at ext_fanout_scale's top count.
void BM_FanoutWalk1M(benchmark::State& state) {
  constexpr std::size_t kSubscribers = 1000000;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    pubsub::Topic topic;
    for (std::size_t i = 0; i < kSubscribers; ++i) {
      topic.add(static_cast<std::int32_t>(i), /*gated=*/false);
    }
    const pubsub::FlowController flow(1);
    pubsub::FanoutStats stats;
    pubsub::Fanout fanout(topic, &flow, stats);
    const auto all = [](const pubsub::Subscriber&) { return true; };
    fanout.publish(1, 0.0, all,
                   [](pubsub::SubscriberId, pubsub::Subscriber&) {});
    // Settle even ids only: update 2 then delivers to half the topic and
    // suppresses the other half (both walker branches stay hot).
    for (pubsub::SubscriberId id = 0; id < kSubscribers; id += 2) {
      fanout.settle(id, 1, /*ok=*/true, /*catch_up=*/false);
    }
    fanout.publish(2, 1.0, all,
                   [](pubsub::SubscriberId, pubsub::Subscriber&) {});
    sink = stats.live_deliveries + stats.suppressed_deliveries;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sink));
  state.counters["deliveries"] = static_cast<double>(sink);
}
BENCHMARK(BM_FanoutWalk1M)
    ->Name("fanout_1m")
    ->Unit(benchmark::kMillisecond);

// Console output as usual, plus one bench-json record per benchmark run.
class JsonAppendingReporter : public benchmark::ConsoleReporter {
 public:
  JsonAppendingReporter(std::string path, std::string config)
      : path_(std::move(path)), config_(std::move(config)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double wall_s =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      double items_per_s = 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) items_per_s = static_cast<double>(it->second);
      bench::append_bench_record(path_, run.benchmark_name(), config_, wall_s,
                                 items_per_s);
    }
  }

 private:
  std::string path_;
  std::string config_;
};

}  // namespace

// BENCHMARK_MAIN() plus our own flags, stripped before benchmark::Initialize
// so ReportUnrecognizedArguments does not reject them:
//   --bench-json PATH     append per-benchmark records to PATH (JSON lines)
//   --bench-config LABEL  config tag stored in each record (default "default")
int main(int argc, char** argv) {
  std::string bench_json;
  std::string config = "default";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench-json" && i + 1 < argc) {
      bench_json = argv[++i];
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      bench_json = arg.substr(std::string("--bench-json=").size());
    } else if (arg == "--bench-config" && i + 1 < argc) {
      config = argv[++i];
    } else if (arg.rfind("--bench-config=", 0) == 0) {
      config = arg.substr(std::string("--bench-config=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (bench_json.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonAppendingReporter reporter(std::move(bench_json), std::move(config));
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  return 0;
}
