// Micro-benchmarks (google-benchmark) for the hot substrate paths: the
// event queue, the latency model, the Hilbert encoder, tree construction,
// and a whole small engine run. These bound the cost of scaling the
// simulator toward the paper's 3000-server crawl.
#include <benchmark/benchmark.h>

#include "consistency/engine.hpp"
#include "core/scenario.hpp"
#include "net/latency_model.hpp"
#include "sim/simulator.hpp"
#include "topology/hilbert.hpp"
#include "topology/multicast_tree.hpp"
#include "trace/game_generator.hpp"

namespace {

using namespace cdnsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      simulator.at(static_cast<double>((i * 7919) % n), [&sink] { ++sink; });
    }
    simulator.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_HaversineLatency(benchmark::State& state) {
  const net::LatencyModel model(net::LatencyConfig{});
  const net::GeoPoint a{33.75, -84.39};
  const net::GeoPoint b{35.68, 139.69};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.propagation(a, b));
  }
}
BENCHMARK(BM_HaversineLatency);

void BM_HilbertNumber(benchmark::State& state) {
  const net::GeoPoint p{48.86, 2.35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::hilbert_number(p, 16));
  }
}
BENCHMARK(BM_HilbertNumber);

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ScenarioConfig sc;
  sc.server_count = n;
  const auto scenario = core::build_scenario(sc);
  for (auto _ : state) {
    topology::MulticastTree tree(*scenario.nodes, 4);
    tree.build(scenario.nodes->server_ids());
    benchmark::DoNotOptimize(tree.max_depth());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeBuild)->Arg(170)->Arg(850);

void BM_EngineGameDay(benchmark::State& state) {
  core::ScenarioConfig sc;
  sc.server_count = static_cast<std::size_t>(state.range(0));
  const auto scenario = core::build_scenario(sc);
  trace::GameTraceConfig game_cfg;
  game_cfg.period_s = 600;
  game_cfg.break_s = 200;
  util::Rng rng(3);
  const auto game = trace::generate_game_trace(game_cfg, rng);
  for (auto _ : state) {
    sim::Simulator simulator;
    consistency::EngineConfig ec;
    ec.method.method = consistency::UpdateMethod::kTtl;
    consistency::UpdateEngine engine(simulator, *scenario.nodes, game, ec);
    engine.run();
    benchmark::DoNotOptimize(simulator.events_processed());
    state.counters["events"] = static_cast<double>(simulator.events_processed());
  }
}
BENCHMARK(BM_EngineGameDay)->Arg(50)->Arg(170)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
