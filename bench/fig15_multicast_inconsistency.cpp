// Figure 15: inconsistency in the (binary) multicast-tree infrastructure.
//  (a) Push < Invalidation < TTL still holds, but TTL's inconsistency is
//      amplified by tree depth (a node at layer m waits up to ~m TTLs);
//  (b) end-user inconsistency under TTL grows correspondingly, while Push
//      and Invalidation match their unicast numbers.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 15: inconsistency in the multicast-tree infrastructure");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  std::vector<std::vector<double>> server_series, user_series;
  std::vector<double> server_avgs, user_avgs;
  const std::vector<std::string> names{"Push", "Invalidation", "TTL"};
  for (auto method : {UpdateMethod::kPush, UpdateMethod::kInvalidation,
                      UpdateMethod::kTtl}) {
    auto ec =
        bench::section4_config(method, InfrastructureKind::kMulticastTree);
    obs.configure(ec);
    const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
    obs.add(std::string("multicast/") + std::string(to_string(method)), r);
    server_series.push_back(r.server_inconsistency_s);
    user_series.push_back(r.per_server_max_user_inconsistency_s);
    server_avgs.push_back(r.avg_server_inconsistency_s);
    user_avgs.push_back(util::mean(r.per_server_max_user_inconsistency_s));
  }

  bench::print_sorted_series("(a) content inconsistency of servers (s)",
                             server_series, names);
  bench::print_sorted_series("(b) largest avg inconsistency of end-users (s)",
                             user_series, names);

  // Reference: unicast TTL for the amplification comparison.
  auto ref_ec =
      bench::section4_config(UpdateMethod::kTtl, InfrastructureKind::kUnicast);
  obs.configure(ref_ec);
  const auto unicast_ttl =
      core::run_simulation(*eval.scenario.nodes, eval.game, ref_ec);
  obs.add("unicast/Ttl-reference", unicast_ttl);

  std::cout << "\nTTL avg: unicast=" << unicast_ttl.avg_server_inconsistency_s
            << "s  multicast=" << server_avgs[2] << "s\n";

  util::ShapeCheck check("fig15");
  check.expect_less(server_avgs[0], server_avgs[1],
                    "(a) Push < Invalidation on servers");
  check.expect_less(server_avgs[1], server_avgs[2],
                    "(a) Invalidation < TTL on servers");
  check.expect_greater(server_avgs[2],
                       2.0 * unicast_ttl.avg_server_inconsistency_s,
                       "(a) tree depth amplifies TTL inconsistency");
  check.expect_greater(user_avgs[2], user_avgs[0],
                       "(b) TTL users worst in multicast too");
  // Deepest nodes suffer most: the top decile far exceeds the bottom decile.
  auto ttl_sorted = server_series[2];
  std::sort(ttl_sorted.begin(), ttl_sorted.end());
  check.expect_greater(ttl_sorted[ttl_sorted.size() * 9 / 10],
                       2.0 * ttl_sorted[ttl_sorted.size() / 10],
                       "(a) lower tree layers see multiples of layer-1 staleness");
  obs.write_direct();
  return bench::finish(check);
}
