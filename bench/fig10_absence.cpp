// Figure 10: provider bandwidth and server failure/overload effects.
//  (a) CDF of provider response times ([0.5, 2.1] s, 90% under 1.5 s)
//  (b) CDF of server absence lengths ([1, 500] s, ~30% < 10 s, ~93% < 50 s)
//  (c) average inconsistency vs absence length (rises 38.1 -> 43.9 s)
//  (d) inconsistency near vs far from the absence window
#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 10: provider bandwidth & server absence effects");

  auto cfg = bench::measurement_config(flags);
  bench::ObsSession obs(argc, argv, flags, cfg.seed);
  cfg.record_trace_events = obs.trace_enabled();
  const auto results = core::run_measurement_study(cfg);

  std::cout << "\n--- (a) CDF of provider response time ---\n";
  util::Cdf rt_cdf(results.provider_response_times);
  bench::print_cdf("response_time_s", rt_cdf, {0.5, 0.8, 1.0, 1.5, 2.0, 3.0});

  std::cout << "\n--- (b) CDF of absence lengths ---\n";
  std::vector<double> absence_lengths;
  for (const auto& ev : results.absence_events) {
    absence_lengths.push_back(ev.absence_length);
  }
  util::Cdf ab_cdf(absence_lengths);
  bench::print_cdf("absence_s", ab_cdf, {5, 10, 20, 50, 100, 200, 500});

  std::cout << "\n--- (c) avg inconsistency after return vs absence length ---\n";
  // Group absence lengths into 50 s buckets, as the paper does.
  std::map<int, std::vector<double>> buckets;
  for (const auto& ev : results.absence_events) {
    if (ev.inconsistency_after_return < 0 || ev.absence_length > 400) continue;
    buckets[static_cast<int>(ev.absence_length / 50.0)].push_back(
        ev.inconsistency_after_return);
  }
  util::TextTable inc_table({"absence_bucket_s", "avg_inconsistency_s", "events"});
  std::vector<double> bucket_x, bucket_y;
  for (const auto& [bucket, vals] : buckets) {
    if (vals.size() < 5) continue;
    const double avg = util::mean(vals);
    inc_table.add_row({bucket * 50.0, avg, static_cast<double>(vals.size())}, 2);
    bucket_x.push_back(bucket * 50.0);
    bucket_y.push_back(avg);
  }
  inc_table.print(std::cout);

  // Baseline: average inconsistency with no absence involved.
  const double overall = results.overall_avg_request_inconsistency;
  std::cout << "\noverall avg inconsistency (all requests) = " << overall << " s\n";

  util::ShapeCheck check("fig10");
  check.expect_in_range(rt_cdf.min(), 0.3, 0.8, "(a) fastest responses ~0.5 s");
  check.expect_less(rt_cdf.max(), 3.0, "(a) slowest responses ~2 s");
  check.expect_greater(rt_cdf.fraction_at_or_below(1.5), 0.7,
                       "(a) most requests resolve within 1.5 s");
  check.expect_in_range(ab_cdf.fraction_at_or_below(10.0), 0.15, 0.45,
                        "(b) ~30% of absences under 10 s");
  check.expect_greater(ab_cdf.fraction_at_or_below(50.0), 0.80,
                       "(b) ~93% of absences under 50 s");
  check.expect_less(ab_cdf.max(), 501.0, "(b) absences bounded by 500 s");
  if (bucket_y.size() >= 3) {
    check.expect_greater(bucket_y.back(), bucket_y.front(),
                         "(c) longer absences -> higher post-return inconsistency");
    check.expect_greater(util::pearson(bucket_x, bucket_y), 0.0,
                         "(c) positive absence-inconsistency trend");
  }
  check.expect_greater(
      bucket_y.empty() ? 0.0 : *std::max_element(bucket_y.begin(), bucket_y.end()),
      overall, "(d) inconsistency near absences exceeds the overall average");
  obs.write_study("fig10", results.metrics, &results.trace);
  return bench::finish(check);
}
