// Extension experiment: cross-content interference at the provider uplink.
//
// Section 1 dismisses unicast because it "causes congestion at bottleneck
// links". A per-content evaluation understates this: real origins serve a
// *portfolio* of live contents through one uplink. Here a latency-critical
// scoreboard (1 KB updates, Push) shares the origin with progressively
// heavier media contents (large Push packets), and we measure how the
// scoreboard's staleness degrades — and how much of the damage each
// alternative (TTL on the heavy content, or a supernode overlay for it)
// undoes.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "core/portfolio.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Extension: multi-content interference at the provider uplink");

  core::ScenarioConfig sc;
  sc.server_count = static_cast<std::size_t>(flags.get_int("servers", 120));
  if (flags.small()) sc.server_count = 50;
  const auto scenario = core::build_scenario(sc);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  const double uplink = flags.get("uplink", 2500.0);  // 20 Mbit/s origin

  // The scoreboard: 1 KB Push updates every ~20 s.
  const auto scoreboard_trace = [] {
    std::vector<sim::SimTime> times;
    for (int i = 1; i <= 60; ++i) times.push_back(i * 20.0);
    return trace::UpdateTrace(times);
  }();
  core::ContentSpec scoreboard;
  scoreboard.name = "scoreboard";
  scoreboard.updates = scoreboard_trace;
  scoreboard.engine.method.method = UpdateMethod::kPush;
  scoreboard.engine.update_packet_kb = 1.0;
  scoreboard.engine.users_per_server = 1;

  // The heavy content: 400 KB media manifests every ~30 s.
  const auto heavy_trace = [] {
    std::vector<sim::SimTime> times;
    for (int i = 1; i <= 40; ++i) times.push_back(i * 30.0 + 3.0);
    return trace::UpdateTrace(times);
  }();
  auto heavy = [&](UpdateMethod m, InfrastructureKind infra) {
    core::ContentSpec spec;
    spec.name = "media";
    spec.updates = heavy_trace;
    spec.engine.method.method = m;
    spec.engine.method.server_ttl_s = 30.0;
    spec.engine.infrastructure.kind = infra;
    spec.engine.infrastructure.cluster_count = 15;
    spec.engine.update_packet_kb = 400.0;
    spec.engine.users_per_server = 1;
    spec.engine.seed = 9;
    return spec;
  };

  struct Mix {
    const char* name;
    std::vector<core::ContentSpec> contents;
  };
  std::vector<Mix> mixes;
  mixes.push_back({"scoreboard alone", {scoreboard}});
  mixes.push_back({"+ media via unicast Push",
                   {scoreboard, heavy(UpdateMethod::kPush,
                                      InfrastructureKind::kUnicast)}});
  mixes.push_back({"+ media via unicast TTL",
                   {scoreboard, heavy(UpdateMethod::kTtl,
                                      InfrastructureKind::kUnicast)}});
  mixes.push_back({"+ media via supernode Push",
                   {scoreboard, heavy(UpdateMethod::kPush,
                                      InfrastructureKind::kHybridSupernode)}});

  util::TextTable table({"portfolio", "scoreboard_staleness_s",
                         "media_staleness_s", "origin_uplink_MB"});
  std::vector<double> scoreboard_staleness;
  for (const auto& mix : mixes) {
    auto contents = mix.contents;
    for (auto& spec : contents) obs.configure(spec.engine);
    const auto r = core::run_portfolio(*scenario.nodes, contents, uplink);
    const double sb = r.contents[0].result.avg_server_inconsistency_s;
    scoreboard_staleness.push_back(sb);
    const double media =
        r.contents.size() > 1 ? r.contents[1].result.avg_server_inconsistency_s
                              : 0.0;
    table.add_row(std::vector<std::string>{
        mix.name, util::format_double(sb, 3), util::format_double(media, 3),
        util::format_double(r.provider_uplink_kb / 1024.0, 1)});
    for (std::size_t i = 0; i < contents.size(); ++i) {
      obs.add(std::string(mix.name) + "/" + contents[i].name,
              r.contents[i].result);
    }
  }
  table.print(std::cout);

  // Indices: 0 alone, 1 +push, 2 +ttl, 3 +supernode-push.
  util::ShapeCheck check("ext-shared-uplink");
  check.expect_greater(scoreboard_staleness[1], 3.0 * scoreboard_staleness[0],
                       "a heavy unicast-push neighbour congests the scoreboard");
  check.expect_less(scoreboard_staleness[2], scoreboard_staleness[1],
                    "moving the neighbour to TTL spreads its load and helps");
  check.expect_less(scoreboard_staleness[3], 0.5 * scoreboard_staleness[1],
                    "a supernode overlay for the neighbour removes most of "
                    "the origin fanout");
  obs.write_direct();
  return bench::finish(check);
}
