// Ablation (DESIGN.md choice #2): the self-adaptive method's switch-back
// trigger.
//
// Section 5.1 argues for switching back to TTL at the *first visited fetch*
// after an invalidation: the first visits on different servers land at
// different times, so the resumed poll phases are spread out and the
// provider avoids the Incast problem. The ablated alternative — every
// server resuming TTL immediately when the invalidation notice arrives —
// synchronises all poll timers on the notice time.
//
// We quantify the difference by the burstiness of provider load: the peak
// number of poll arrivals at the provider within any 1-second window after
// the first post-silence update.
#include <algorithm>
#include <map>

#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "consistency/engine.hpp"
#include "util/stats.hpp"

namespace {

using namespace cdnsim;

// Simplified phase model driven by the same visit process the engine uses:
// servers sit in invalidation mode through a silence; an update arrives at
// t=0; each server has `users` users polling with period `user_ttl` and
// random phase. Under the paper's rule a server's TTL clock restarts at its
// first visit after 0; under the ablation it restarts at the notice arrival
// (~0 for everyone). We then count poll arrivals at the provider per second
// over the following TTL window.
struct BurstStats {
  double peak_per_second;
  double mean_per_second;
};

BurstStats measure(bool paper_rule, std::size_t servers, double server_ttl,
                   double user_ttl, std::size_t users, util::Rng& rng) {
  std::map<long, int> arrivals;
  for (std::size_t s = 0; s < servers; ++s) {
    double resume;
    if (paper_rule) {
      // First visit after the update: minimum of `users` uniform phases.
      double first_visit = user_ttl;
      for (std::size_t u = 0; u < users; ++u) {
        first_visit = std::min(first_visit, rng.uniform(0.0, user_ttl));
      }
      resume = first_visit;
    } else {
      resume = rng.uniform(0.0, 0.2);  // notice arrival jitter only
    }
    // First TTL poll lands one TTL after resumption.
    const double poll = resume + server_ttl;
    arrivals[static_cast<long>(poll)] += 1;
  }
  BurstStats out{0, 0};
  double sum = 0;
  for (const auto& [sec, n] : arrivals) {
    out.peak_per_second = std::max(out.peak_per_second, static_cast<double>(n));
    sum += n;
  }
  out.mean_per_second = arrivals.empty() ? 0 : sum / static_cast<double>(arrivals.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner(
      "Ablation: self-adaptive switch-back trigger (Incast avoidance, Sec 5.1)");

  const std::size_t servers =
      static_cast<std::size_t>(flags.get_int("servers", 850));
  util::Rng rng(11);

  util::TextTable table({"rule", "peak_polls_per_s", "mean_polls_per_s"});
  // One active viewer per server: during the silences that precede a
  // switch-back, audiences are thin, which is exactly when the resumption
  // spreading matters.
  const auto paper = measure(true, servers, 60.0, 10.0, 1, rng);
  const auto ablated = measure(false, servers, 60.0, 10.0, 1, rng);
  table.add_row(std::vector<std::string>{
      "switch-at-first-visited-fetch (paper)",
      util::format_double(paper.peak_per_second, 0),
      util::format_double(paper.mean_per_second, 1)});
  table.add_row(std::vector<std::string>{
      "switch-at-notice (ablated)", util::format_double(ablated.peak_per_second, 0),
      util::format_double(ablated.mean_per_second, 1)});
  table.print(std::cout);

  std::cout << "\nIncast ratio (ablated peak / paper peak): "
            << ablated.peak_per_second / paper.peak_per_second << "\n";

  // Also confirm the end-to-end engine with the paper rule stays consistent
  // (regression guard for the mechanism under ablation) — one self-adaptive
  // run per Section 5 infrastructure, batched over --jobs threads.
  auto eval = bench::evaluation_setup(flags, 120);
  std::vector<core::BatchJob> jobs;
  for (auto infra : {consistency::InfrastructureKind::kUnicast,
                     consistency::InfrastructureKind::kHybridSupernode}) {
    core::BatchJob job;
    job.shared_nodes = eval.scenario.nodes.get();
    job.shared_trace = &eval.game;
    job.engine =
        bench::section5_config(consistency::UpdateMethod::kSelfAdaptive, infra);
    job.label = infra == consistency::InfrastructureKind::kUnicast
                    ? "self-adaptive/unicast"
                    : "HAT/supernode";
    jobs.push_back(std::move(job));
  }
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  obs.apply(jobs);
  obs.set_shards(bench::apply_shard_flags(
      jobs, flags.shards(consistency::EngineConfig::ShardConfig::kAuto),
      flags.epoch_s(0.25)));
  const core::BatchRunner runner(
      {.threads = flags.jobs(), .heartbeat_period_s = flags.heartbeat()});
  core::BatchRunStats batch_stats;
  const auto batch =
      bench::run_batch_reported(runner, jobs, false, &batch_stats);
  obs.write(batch, batch_stats);
  const auto& r = batch[0].sim;
  const auto& hat = batch[1].sim;

  util::ShapeCheck check("abl-selfadaptive-switch");
  check.expect_greater(ablated.peak_per_second, 3.0 * paper.peak_per_second,
                       "notice-synchronised resumption causes Incast bursts");
  check.expect_less(paper.peak_per_second,
                    static_cast<double>(servers) / 4.0,
                    "visit-spread resumption keeps per-second arrivals low");
  check.expect_less(r.avg_server_inconsistency_s, 60.0,
                    "engine's self-adaptive servers stay within one TTL");
  check.expect_less(hat.avg_server_inconsistency_s, 60.0,
                    "HAT servers stay within one TTL too");
  return bench::finish(check);
}
