// Figure 23: consistency-maintenance network load, in km of message travel,
// split into update messages and light messages, for all six systems.
//
// Paper findings: Hybrid's locality makes its update load comparable to
// Self's despite more messages; HAT is the lightest overall; the
// polling-based systems carry roughly as many light messages (requests) as
// update messages (responses).
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 23: consistency maintenance network load (km)");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  const auto systems = bench::section5_systems();

  util::TextTable table({"system", "update_km", "light_km", "total_km"});
  std::vector<double> totals(systems.size());
  std::vector<double> update_km(systems.size());
  std::vector<double> light_km(systems.size());
  for (std::size_t i = 0; i < systems.size(); ++i) {
    auto ec = bench::section5_config(systems[i].method, systems[i].infra);
    obs.configure(ec);
    const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
    obs.add(systems[i].name, r);
    update_km[i] = r.traffic.load_km_update;
    light_km[i] = r.traffic.load_km_light;
    totals[i] = r.traffic.load_km_total();
    table.add_row(std::vector<std::string>{
        systems[i].name, util::format_double(update_km[i], 0),
        util::format_double(light_km[i], 0), util::format_double(totals[i], 0)});
  }
  table.print(std::cout);

  // Indices: 0 Push, 1 Invalidation, 2 TTL, 3 Self, 4 Hybrid, 5 HAT.
  util::ShapeCheck check("fig23");
  check.expect_less(totals[5], totals[2], "HAT lighter than TTL");
  check.expect_less(totals[5], totals[3], "HAT lighter than Self");
  check.expect_less(totals[5], totals[0], "HAT lighter than Push");
  check.expect_less(totals[5], totals[1], "HAT lighter than Invalidation");
  check.expect_less(totals[4], totals[2],
                    "Hybrid's locality beats unicast TTL despite more messages");
  check.expect_near(light_km[2], update_km[2], 0.65,
                    "TTL carries comparable request and response load");
  obs.write_direct();
  return bench::finish(check);
}
