// Ablation (DESIGN.md choice #3): proximity-aware vs random tree
// construction, for both the full multicast tree and HAT's supernode
// overlay. Proximity awareness is why multicast/hybrid save traffic cost
// (Figs. 16, 23); randomised parent selection keeps the same message counts
// but much longer edges.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Ablation: proximity-aware vs random tree construction");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  struct Row {
    const char* name;
    UpdateMethod method;
    InfrastructureKind infra;
  };
  const std::vector<Row> rows{
      {"Push+MulticastTree", UpdateMethod::kPush,
       InfrastructureKind::kMulticastTree},
      {"TTL+MulticastTree", UpdateMethod::kTtl,
       InfrastructureKind::kMulticastTree},
      {"HAT(Hybrid+SelfAdaptive)", UpdateMethod::kSelfAdaptive,
       InfrastructureKind::kHybridSupernode},
  };

  util::TextTable table({"system", "proximity_km", "random_km", "saving"});
  std::vector<double> savings;
  for (const auto& row : rows) {
    double load[2];
    for (int variant = 0; variant < 2; ++variant) {
      auto ec = bench::section5_config(row.method, row.infra);
      ec.infrastructure.proximity_aware = variant == 0;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add(std::string(row.name) +
                  (variant == 0 ? "/proximity" : "/random"),
              r);
      load[variant] = r.traffic.load_km_total();
    }
    const double saving = 1.0 - load[0] / load[1];
    savings.push_back(saving);
    table.add_row(std::vector<std::string>{
        row.name, util::format_double(load[0], 0), util::format_double(load[1], 0),
        util::format_double(saving, 3)});
  }
  table.print(std::cout);

  util::ShapeCheck check("abl-tree-proximity");
  check.expect_greater(savings[0], 0.3,
                       "proximity saves >30% km for multicast Push");
  check.expect_greater(savings[1], 0.3,
                       "proximity saves >30% km for multicast TTL");
  check.expect_greater(savings[2], 0.0, "proximity also helps HAT's overlay");
  obs.write_direct();
  return bench::finish(check);
}
