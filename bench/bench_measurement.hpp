// Shared measurement-study configuration for the Section 3 figure benches
// (Figs. 3-12). Sized so each binary completes in seconds; pass
// --servers / --days to scale up toward the paper's 3000-server crawl, or
// --small for a quick smoke run.
#pragma once

#include "bench_common.hpp"
#include "core/measurement_study.hpp"

namespace cdnsim::bench {

inline core::MeasurementConfig measurement_config(const Flags& flags,
                                                  std::size_t default_servers = 400,
                                                  std::size_t default_days = 10) {
  core::MeasurementConfig cfg;
  cfg.scenario.server_count = static_cast<std::size_t>(
      flags.get_int("servers", static_cast<std::int64_t>(default_servers)));
  cfg.days = static_cast<std::size_t>(
      flags.get_int("days", static_cast<std::int64_t>(default_days)));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  // --jobs N parallelises the per-day simulations (identical results for
  // every N; see core::MeasurementConfig::threads).
  cfg.threads = flags.jobs();
  if (flags.small()) {
    cfg.scenario.server_count = 120;
    cfg.days = 2;
  }
  return cfg;
}

}  // namespace cdnsim::bench
