// Observability sink for the figure-reproduction binaries.
//
// An ObsSession turns the --metrics-out / --trace-out / --csv-out /
// --profile-out flags into files:
//   * metrics  — JSONL, one {"label", "metrics"} object per batch job in
//     submission order. Everything inside derives from sim time and seeded
//     RNG state, so the file is byte-identical across --jobs counts (the
//     tier-1 obs stage cmp's --jobs 1 vs --jobs 8);
//   * trace    — one Chrome trace-event JSON merging every job's recorded
//     events, pid = job submission index, tid = node id;
//   * csv      — a per-job summary table (RFC 4180 quoted, full-precision
//     doubles);
//   * profile  — <path>.profile JSON (deterministic scope counts/sim
//     coverage + host-only wall section) plus a collapsed-stack .folded
//     sibling for flamegraph.pl / speedscope. Batch binaries only;
//   * timeseries — cdnsim.timeseries.v1 JSON with a deterministic section
//     (per-run sampled series + propagation-span rollups, byte-identical
//     across --jobs/--shards) and a host section (shard health samples),
//     plus a long-form CSV sibling for plotting;
//   * next to each file, a <file>.manifest.json RunManifest — the one
//     deliberately non-deterministic artifact (wall clock, host, git
//     revision, steal counts).
//
// Usage in a batch bench main():
//   bench::ObsSession obs(argc, argv, flags, kSeed);
//   obs.apply(jobs);                       // per-job tracing + profiling
//   core::BatchRunStats stats;
//   auto results = bench::run_batch_reported(runner, jobs, false, &stats);
//   obs.write(results, stats);
//
// Binaries that call run_simulation directly (no BatchRunner) use the
// configure()/add()/write_direct() hook instead; measurement-study binaries
// (one merged registry for the whole study) use write_study().
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/batch_runner.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_recorder.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace cdnsim::bench {

class ObsSession {
 public:
  ObsSession(int argc, char** argv, const Flags& flags, std::uint64_t seed)
      : metrics_path_(flags.metrics_out()),
        trace_path_(flags.trace_out()),
        csv_path_(flags.csv_out()),
        profile_path_(flags.profile_out()),
        timeseries_path_(flags.timeseries_out()),
        sample_s_(flags.sample_s(10.0)) {
    if (!enabled()) return;
    manifest_ = obs::capture_manifest(argc, argv);
    manifest_.seed = seed;
    manifest_.jobs = static_cast<int>(flags.jobs());
  }

  bool enabled() const {
    return !metrics_path_.empty() || !trace_path_.empty() ||
           !csv_path_.empty() || !profile_path_.empty() ||
           !timeseries_path_.empty();
  }

  /// Records the apply_shard_flags() summary in every manifest written by
  /// this session (which --shards selection ran, and what auto resolved to).
  void set_shards(const std::string& summary) { manifest_.shards = summary; }
  bool trace_enabled() const { return !trace_path_.empty(); }
  bool profile_enabled() const { return !profile_path_.empty(); }
  bool timeseries_enabled() const { return !timeseries_path_.empty(); }

  /// Enables per-engine trace recording (--trace-out), per-job profiling
  /// (--profile-out) and time-resolved sampling (--timeseries-out) on every
  /// job. Call before running the batch. Time series do not force classic
  /// execution — apply_shard_flags() composes with them.
  void apply(std::vector<core::BatchJob>& jobs) const {
    for (core::BatchJob& job : jobs) {
      if (trace_enabled()) job.engine.record_trace_events = true;
      if (profile_enabled()) job.profile = true;
      if (timeseries_enabled()) job.engine.timeseries_sample_s = sample_s_;
    }
  }

  /// Direct-run hook (binaries sweeping run_simulation in a plain loop):
  /// call configure() on each engine config before its run, add() with each
  /// result, then write_direct() once. --profile-out is a batch-only
  /// feature; a request here is warned about and skipped.
  void configure(consistency::EngineConfig& engine) const {
    if (trace_enabled()) engine.record_trace_events = true;
    if (timeseries_enabled()) engine.timeseries_sample_s = sample_s_;
  }

  void add(const std::string& label, core::SimulationResult sim) {
    if (!enabled()) return;
    core::BatchResult r;
    r.label = label;
    r.sim = std::move(sim);
    added_.push_back(std::move(r));
  }

  void write_direct() {
    if (!enabled()) return;
    warn_unsupported(profile_path_, "--profile-out",
                     "batch (BatchRunner) binaries");
    profile_path_.clear();
    core::BatchRunStats stats;
    stats.threads = 1;
    stats.wall_s = timer_.seconds();
    write(added_, stats);
  }

  /// Measurement-study hook: the study produces one merged registry (and
  /// optionally one merged trace, pid = day index) for the whole run, not
  /// per-job results. CSV and profile do not apply; requests are warned
  /// about and skipped. The trace is written as-is so the study's own pid
  /// assignment survives.
  void write_study(const std::string& label,
                   const obs::MetricsRegistry& metrics,
                   const obs::TraceRecorder* trace) {
    if (!enabled()) return;
    warn_unsupported(csv_path_, "--csv-out", "per-job batch binaries");
    csv_path_.clear();
    warn_unsupported(profile_path_, "--profile-out",
                     "batch (BatchRunner) binaries");
    profile_path_.clear();
    warn_unsupported(timeseries_path_, "--timeseries-out",
                     "per-job batch and direct-run binaries");
    timeseries_path_.clear();
    manifest_.config_digest = obs::fnv1a64_hex(label + "\n");
    manifest_.wall_s = timer_.seconds();
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) throw Error("cannot write metrics: " + metrics_path_);
      out << "{\"label\":\"" << obs::json_escape(label) << "\",\"metrics\":";
      metrics.write_json(out);
      out << "}\n";
      out.close();
      obs::write_manifest_for(metrics_path_, manifest_);
      std::cout << "metrics: 1 record(s) -> " << metrics_path_ << "\n";
    }
    if (!trace_path_.empty()) {
      if (trace == nullptr) {
        std::cerr << "warning: --trace-out requested but this study recorded "
                     "no trace\n";
      } else {
        std::ofstream out(trace_path_);
        if (!out) throw Error("cannot write trace: " + trace_path_);
        trace->write_chrome_json(out);
        out.close();
        obs::write_manifest_for(trace_path_, manifest_);
        std::cout << "trace: " << trace->size() << " event(s) -> "
                  << trace_path_ << "\n";
      }
    }
  }

  /// Writes every requested artifact plus its manifest. Call after the
  /// batch completes; all jobs in `results` must have succeeded.
  void write(const std::vector<core::BatchResult>& results,
             const core::BatchRunStats& stats) {
    if (!enabled()) return;
    // The digest covers the logical run configuration (the job labels, in
    // order) — identical across --jobs counts and hosts, unlike the
    // manifest's args/wall-clock fields.
    std::string digest_input;
    for (const auto& r : results) {
      digest_input += r.label;
      digest_input += '\n';
    }
    manifest_.config_digest = obs::fnv1a64_hex(digest_input);
    manifest_.wall_s = stats.wall_s;
    if (stats.threads > 0) {
      manifest_.jobs = static_cast<int>(stats.threads);
    }

    if (!metrics_path_.empty()) write_metrics(results);
    if (!trace_path_.empty()) write_trace(results);
    if (!csv_path_.empty()) write_csv(results);
    if (!profile_path_.empty()) write_profile(results);
    if (!timeseries_path_.empty()) write_timeseries(results);
  }

  /// Collapsed-stack sibling of a --profile-out path (.json -> .folded).
  static std::string folded_path_for(const std::string& profile_path) {
    const std::string suffix = ".json";
    if (profile_path.size() > suffix.size() &&
        profile_path.compare(profile_path.size() - suffix.size(),
                             suffix.size(), suffix) == 0) {
      return profile_path.substr(0, profile_path.size() - suffix.size()) +
             ".folded";
    }
    return profile_path + ".folded";
  }

  /// Long-form CSV sibling of a --timeseries-out path (.json -> .csv).
  static std::string timeseries_csv_path_for(const std::string& path) {
    const std::string suffix = ".json";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return path.substr(0, path.size() - suffix.size()) + ".csv";
    }
    return path + ".csv";
  }

 private:
  static void warn_unsupported(const std::string& path, const char* flag,
                               const char* where) {
    if (path.empty()) return;
    std::cerr << "warning: " << flag << " is only supported by " << where
              << "; skipping " << path << "\n";
  }

  void write_profile(const std::vector<core::BatchResult>& results) const {
    // Submission-order merge: the deterministic sections are then a pure
    // function of the job list, independent of --jobs.
    obs::ProfileReport merged;
    for (const auto& r : results) merged.merge_from(r.sim.profile);
    std::ofstream out(profile_path_);
    if (!out) throw Error("cannot write profile: " + profile_path_);
    merged.write_json(out);
    out.close();
    obs::write_manifest_for(profile_path_, manifest_);
    const std::string folded = folded_path_for(profile_path_);
    std::ofstream fout(folded);
    if (!fout) throw Error("cannot write folded profile: " + folded);
    merged.write_folded(fout);
    fout.close();
    std::cout << "profile: " << merged.entries().size() << " scope(s) -> "
              << profile_path_ << " (+ " << folded << ")\n";
  }
  void write_metrics(const std::vector<core::BatchResult>& results) const {
    std::ofstream out(metrics_path_);
    if (!out) throw Error("cannot write metrics: " + metrics_path_);
    for (const auto& r : results) {
      out << "{\"label\":\"" << obs::json_escape(r.label) << "\",\"metrics\":";
      r.sim.metrics.write_json(out);
      out << "}\n";
    }
    out.close();
    obs::write_manifest_for(metrics_path_, manifest_);
    std::cout << "metrics: " << results.size() << " record(s) -> "
              << metrics_path_ << "\n";
  }

  void write_trace(const std::vector<core::BatchResult>& results) const {
    obs::TraceRecorder merged;
    for (std::size_t i = 0; i < results.size(); ++i) {
      merged.append(results[i].sim.trace, static_cast<std::int32_t>(i));
    }
    std::ofstream out(trace_path_);
    if (!out) throw Error("cannot write trace: " + trace_path_);
    merged.write_chrome_json(out);
    out.close();
    obs::write_manifest_for(trace_path_, manifest_);
    std::cout << "trace: " << merged.size() << " event(s) -> " << trace_path_
              << "\n";
  }

  void write_csv(const std::vector<core::BatchResult>& results) const {
    std::ofstream out(csv_path_);
    if (!out) throw Error("cannot write csv: " + csv_path_);
    util::CsvWriter w(out);
    w.header({"label", "config", "avg_server_inconsistency_s",
              "avg_user_inconsistency_s", "cost_km_kb", "update_messages",
              "events_processed"});
    for (const auto& r : results) {
      // The config column rewrites the label's '/' separators to commas —
      // a field that *requires* RFC 4180 quoting, so any regression in the
      // CSV writer breaks the tier-1 obs checker immediately.
      std::string config = r.label;
      for (char& c : config) {
        if (c == '/') c = ',';
      }
      w.row({r.label, config,
             util::format_double(r.sim.avg_server_inconsistency_s),
             util::format_double(r.sim.avg_user_inconsistency_s),
             util::format_double(r.sim.traffic.cost_km_kb),
             std::to_string(r.sim.traffic.update_messages),
             std::to_string(r.sim.events_processed)});
    }
    out.close();
    obs::write_manifest_for(csv_path_, manifest_);
    std::cout << "csv: " << results.size() << " row(s) -> " << csv_path_
              << "\n";
  }

  void write_timeseries(const std::vector<core::BatchResult>& results) const {
    // Two top-level sections mirror the profile artifact split:
    // "deterministic" derives from sim time + seeded RNG only (tier-1 cmp's
    // it across --jobs and --shards); "host" carries the per-run shard
    // health samples (barrier wall time — scheduling-dependent by nature).
    std::ofstream out(timeseries_path_);
    if (!out) throw Error("cannot write timeseries: " + timeseries_path_);
    out << "{\"schema\":\"cdnsim.timeseries.v1\",\"deterministic\":{\"runs\":[";
    bool first = true;
    std::size_t runs = 0;
    std::size_t rows = 0;
    for (const auto& r : results) {
      if (r.sim.timeseries.names.empty()) continue;
      if (!first) out << ',';
      first = false;
      ++runs;
      rows += r.sim.timeseries.rows.size();
      out << "{\"label\":\"" << obs::json_escape(r.label) << "\",\"series\":";
      r.sim.timeseries.write_deterministic(out);
      out << '}';
    }
    out << "]},\"host\":{\"runs\":[";
    first = true;
    for (const auto& r : results) {
      if (r.sim.timeseries.names.empty()) continue;
      if (!first) out << ',';
      first = false;
      out << "{\"label\":\"" << obs::json_escape(r.label) << "\",\"shard\":";
      r.sim.timeseries.write_host(out);
      out << '}';
    }
    out << "]}}\n";
    out.close();
    obs::write_manifest_for(timeseries_path_, manifest_);

    // Long-form CSV sibling for plotting: one (label, t, series, value) row
    // per sample cell, plus span.* rollup rows. Deterministic content only.
    const std::string csv = timeseries_csv_path_for(timeseries_path_);
    std::ofstream cout_stream(csv);
    if (!cout_stream) throw Error("cannot write timeseries csv: " + csv);
    util::CsvWriter w(cout_stream);
    w.header({"label", "t", "series", "value"});
    for (const auto& r : results) {
      const obs::TimeSeriesReport& ts = r.sim.timeseries;
      if (ts.names.empty()) continue;
      for (const auto& row : ts.rows) {
        const std::string t = util::format_double(row[0]);
        for (std::size_t c = 0; c < ts.names.size(); ++c) {
          w.row({r.label, t, ts.names[c], util::format_double(row[c + 1])});
        }
      }
      for (const auto& s : ts.spans) {
        const std::string t = util::format_double(s.t);
        const double n = s.applied_versions > 0
                             ? static_cast<double>(s.applied_versions)
                             : 1.0;
        w.row({r.label, t, "span.published",
               util::format_double(static_cast<double>(s.published))});
        w.row({r.label, t, "span.applied_versions",
               util::format_double(static_cast<double>(s.applied_versions))});
        w.row({r.label, t, "span.applies",
               util::format_double(static_cast<double>(s.applies))});
        w.row({r.label, t, "span.reached_all",
               util::format_double(static_cast<double>(s.reached_all))});
        w.row({r.label, t, "span.first_mean_s",
               util::format_double(s.first_sum_s / n)});
        w.row({r.label, t, "span.median_mean_s",
               util::format_double(s.median_sum_s / n)});
        w.row({r.label, t, "span.last_mean_s",
               util::format_double(s.last_sum_s / n)});
        w.row({r.label, t, "span.last_max_s",
               util::format_double(s.last_max_s)});
      }
    }
    cout_stream.close();
    std::cout << "timeseries: " << runs << " run(s), " << rows
              << " sample row(s) -> " << timeseries_path_ << " (+ " << csv
              << ")\n";
  }

  std::string metrics_path_;
  std::string trace_path_;
  std::string csv_path_;
  std::string profile_path_;
  std::string timeseries_path_;
  double sample_s_ = 10.0;
  obs::RunManifest manifest_;
  std::vector<core::BatchResult> added_;  // direct-run hook accumulator
  WallTimer timer_;                       // session lifetime ~ run wall time
};

}  // namespace cdnsim::bench
