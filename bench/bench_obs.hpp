// Observability sink for the figure-reproduction binaries.
//
// An ObsSession turns the --metrics-out / --trace-out / --csv-out flags
// into files:
//   * metrics  — JSONL, one {"label", "metrics"} object per batch job in
//     submission order. Everything inside derives from sim time and seeded
//     RNG state, so the file is byte-identical across --jobs counts (the
//     tier-1 obs stage cmp's --jobs 1 vs --jobs 8);
//   * trace    — one Chrome trace-event JSON merging every job's recorded
//     events, pid = job submission index, tid = node id;
//   * csv      — a per-job summary table (RFC 4180 quoted, full-precision
//     doubles);
//   * next to each file, a <file>.manifest.json RunManifest — the one
//     deliberately non-deterministic artifact (wall clock, host, git
//     revision, steal counts).
//
// Usage in a bench main():
//   bench::ObsSession obs(argc, argv, flags, kSeed);
//   obs.apply(jobs);                       // turns on per-job tracing
//   core::BatchRunStats stats;
//   auto results = bench::run_batch_reported(runner, jobs, false, &stats);
//   obs.write(results, stats);
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/batch_runner.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace cdnsim::bench {

class ObsSession {
 public:
  ObsSession(int argc, char** argv, const Flags& flags, std::uint64_t seed)
      : metrics_path_(flags.metrics_out()),
        trace_path_(flags.trace_out()),
        csv_path_(flags.csv_out()) {
    if (!enabled()) return;
    manifest_ = obs::capture_manifest(argc, argv);
    manifest_.seed = seed;
    manifest_.jobs = static_cast<int>(flags.jobs());
  }

  bool enabled() const {
    return !metrics_path_.empty() || !trace_path_.empty() ||
           !csv_path_.empty();
  }
  bool trace_enabled() const { return !trace_path_.empty(); }

  /// Enables per-engine trace recording on every job when --trace-out is
  /// set. Call before running the batch.
  void apply(std::vector<core::BatchJob>& jobs) const {
    if (!trace_enabled()) return;
    for (core::BatchJob& job : jobs) job.engine.record_trace_events = true;
  }

  /// Writes every requested artifact plus its manifest. Call after the
  /// batch completes; all jobs in `results` must have succeeded.
  void write(const std::vector<core::BatchResult>& results,
             const core::BatchRunStats& stats) {
    if (!enabled()) return;
    // The digest covers the logical run configuration (the job labels, in
    // order) — identical across --jobs counts and hosts, unlike the
    // manifest's args/wall-clock fields.
    std::string digest_input;
    for (const auto& r : results) {
      digest_input += r.label;
      digest_input += '\n';
    }
    manifest_.config_digest = obs::fnv1a64_hex(digest_input);
    manifest_.wall_s = stats.wall_s;
    if (stats.threads > 0) {
      manifest_.jobs = static_cast<int>(stats.threads);
    }

    if (!metrics_path_.empty()) write_metrics(results);
    if (!trace_path_.empty()) write_trace(results);
    if (!csv_path_.empty()) write_csv(results);
  }

 private:
  void write_metrics(const std::vector<core::BatchResult>& results) const {
    std::ofstream out(metrics_path_);
    if (!out) throw Error("cannot write metrics: " + metrics_path_);
    for (const auto& r : results) {
      out << "{\"label\":\"" << obs::json_escape(r.label) << "\",\"metrics\":";
      r.sim.metrics.write_json(out);
      out << "}\n";
    }
    out.close();
    obs::write_manifest_for(metrics_path_, manifest_);
    std::cout << "metrics: " << results.size() << " record(s) -> "
              << metrics_path_ << "\n";
  }

  void write_trace(const std::vector<core::BatchResult>& results) const {
    obs::TraceRecorder merged;
    for (std::size_t i = 0; i < results.size(); ++i) {
      merged.append(results[i].sim.trace, static_cast<std::int32_t>(i));
    }
    std::ofstream out(trace_path_);
    if (!out) throw Error("cannot write trace: " + trace_path_);
    merged.write_chrome_json(out);
    out.close();
    obs::write_manifest_for(trace_path_, manifest_);
    std::cout << "trace: " << merged.size() << " event(s) -> " << trace_path_
              << "\n";
  }

  void write_csv(const std::vector<core::BatchResult>& results) const {
    std::ofstream out(csv_path_);
    if (!out) throw Error("cannot write csv: " + csv_path_);
    util::CsvWriter w(out);
    w.header({"label", "config", "avg_server_inconsistency_s",
              "avg_user_inconsistency_s", "cost_km_kb", "update_messages",
              "events_processed"});
    for (const auto& r : results) {
      // The config column rewrites the label's '/' separators to commas —
      // a field that *requires* RFC 4180 quoting, so any regression in the
      // CSV writer breaks the tier-1 obs checker immediately.
      std::string config = r.label;
      for (char& c : config) {
        if (c == '/') c = ',';
      }
      w.row({r.label, config,
             util::format_double(r.sim.avg_server_inconsistency_s),
             util::format_double(r.sim.avg_user_inconsistency_s),
             util::format_double(r.sim.traffic.cost_km_kb),
             std::to_string(r.sim.traffic.update_messages),
             std::to_string(r.sim.events_processed)});
    }
    out.close();
    obs::write_manifest_for(csv_path_, manifest_);
    std::cout << "csv: " << results.size() << " row(s) -> " << csv_path_
              << "\n";
  }

  std::string metrics_path_;
  std::string trace_path_;
  std::string csv_path_;
  obs::RunManifest manifest_;
};

}  // namespace cdnsim::bench
