// Figures 5 & 6: inner-cluster inconsistency and TTL inference.
//  5(a,b) — CDF of inner-cluster inconsistency lengths: approximately
//           linear within [0, TTL] (uniform-poll-phase signature);
//  6(a)   — recursive-refinement deviation curve, minimised at TTL = 60 s;
//  6(b)   — trace-vs-theory CDF comparison: RMSE(60 s) < RMSE(80 s).
#include "analysis/ttl_inference.hpp"
#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figures 5-6: inner-cluster inconsistency & TTL inference");

  auto cfg = bench::measurement_config(flags);
  bench::ObsSession obs(argc, argv, flags, cfg.seed);
  cfg.record_trace_events = obs.trace_enabled();
  const auto results = core::run_measurement_study(cfg);

  std::cout << "\n--- Fig 5: CDF of inner-cluster inconsistency ---\n";
  const auto& lengths = results.inner_cluster_inconsistency;
  util::Cdf cdf(lengths);
  bench::print_cdf("inconsistency_s", cdf, {1, 10, 20, 30, 40, 50, 60, 80, 100});

  std::cout << "\n--- Fig 6(a): TTL refinement deviation curve ---\n";
  // The inference assumes alpha(Ci) is close to the true update time —
  // valid when the reference set is large ("since we poll a very large
  // number of servers..."). Our clusters are much smaller than the paper's
  // 3000-server crawl, so the inference runs on the full-trace lengths
  // (global alpha); the inner-cluster lengths above keep the Fig. 5 CDF.
  const auto& inference_lengths = results.request_inconsistency;
  std::vector<double> candidates;
  for (double t = 40; t <= 80; t += 5) candidates.push_back(t);
  const auto curve = analysis::ttl_deviation_curve(inference_lengths, candidates);
  util::TextTable dev_table({"expected_ttl_s", "deviation"});
  double best_ttl = 0, best_dev = 1e18;
  for (const auto& c : curve) {
    dev_table.add_row({c.ttl, c.deviation}, 4);
    if (c.deviation < best_dev) {
      best_dev = c.deviation;
      best_ttl = c.ttl;
    }
  }
  dev_table.print(std::cout);
  const double inferred = analysis::infer_ttl(inference_lengths);
  std::cout << "recursive refinement converges to TTL = " << inferred << " s\n";

  std::cout << "\n--- Fig 6(b): trace vs uniform theory ---\n";
  const double rmse60 = analysis::uniform_theory_rmse(inference_lengths, 60.0);
  const double rmse80 = analysis::uniform_theory_rmse(inference_lengths, 80.0);
  util::TextTable rmse_table({"candidate_ttl_s", "rmse_vs_theory"});
  rmse_table.add_row({60.0, rmse60}, 4);
  rmse_table.add_row({80.0, rmse80}, 4);
  rmse_table.print(std::cout);

  util::ShapeCheck check("fig5-6");
  // Fig 5(b): approximately linear CDF within [0, TTL]: CDF(x) ~ x/TTL.
  const double at20 = cdf.fraction_at_or_below(20.0) / cdf.fraction_at_or_below(60.0);
  const double at40 = cdf.fraction_at_or_below(40.0) / cdf.fraction_at_or_below(60.0);
  check.expect_in_range(at20, 0.18, 0.55, "CDF near-linear at x=20 of [0,60]");
  check.expect_in_range(at40, 0.45, 0.85, "CDF near-linear at x=40 of [0,60]");
  check.expect_in_range(best_ttl, 50.0, 70.0,
                        "deviation curve minimised near the true 60 s TTL");
  check.expect_in_range(inferred, 45.0, 75.0,
                        "recursive refinement recovers ~60 s");
  check.expect_less(rmse60, rmse80, "RMSE(TTL=60) < RMSE(TTL=80) as in Fig 6b");
  obs.write_study("fig05_06", results.metrics, &results.trace);
  return bench::finish(check);
}
