// Extension experiment: time-resolved convergence curves per update method.
//
// The end-of-run metrics (converged_server_fraction, avg inconsistency)
// compress a whole run into one number. This bench demonstrates the
// obs::TimeSeries sampler by plotting the *trajectory* instead: for each
// method, the fraction of replicas holding the latest published version at
// every sample instant, under a lossy network (the ext_fault_tolerance plan)
// and under a lossless baseline.
//
// The curves make the methods' time structure visible where the final
// metric cannot:
//  * Push converges within delivery latency of every update, so its
//    lossless curve hugs 1.0 between updates;
//  * TTL dips after every update (replicas stay stale up to one TTL) but
//    always recovers — its curve oscillates yet ends at 1.0 even with loss;
//  * fire-and-forget Push under loss strands replicas permanently: the
//    curve steps *down* over the run and never recovers, while Push+retry
//    tracks the lossless shape.
//
// The final point of every curve must equal the end-of-run
// converged_server_fraction exactly (the closing sample lands strictly
// after the last event) — pinned by the shape checks below, and the span
// rollups must account for every published version.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

namespace {

std::size_t column_index(const cdnsim::obs::TimeSeriesReport& ts,
                         const std::string& name) {
  for (std::size_t i = 0; i < ts.names.size(); ++i) {
    if (ts.names[i] == name) return i;
  }
  throw cdnsim::Error("timeseries column missing: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Extension: time-resolved convergence curves under faults");

  auto eval = bench::evaluation_setup(flags);
  const double loss = flags.get("loss", 0.15);
  const double sample_s = flags.sample_s(10.0);

  struct SystemRow {
    const char* name;
    UpdateMethod method;
    bool reliable;
  };
  const std::vector<SystemRow> systems{
      {"TTL", UpdateMethod::kTtl, false},
      {"Push", UpdateMethod::kPush, false},
      {"Invalidation", UpdateMethod::kInvalidation, false},
      {"Push+retry", UpdateMethod::kPush, true},
  };
  const std::vector<double> loss_rates{0.0, loss};

  std::vector<core::BatchJob> jobs;
  jobs.reserve(loss_rates.size() * systems.size());
  for (double rate : loss_rates) {
    for (const auto& system : systems) {
      core::BatchJob job;
      job.shared_nodes = eval.scenario.nodes.get();
      job.shared_trace = &eval.game;
      job.engine = bench::section4_config(system.method,
                                          InfrastructureKind::kUnicast);
      job.engine.fault.enabled = rate > 0;
      job.engine.fault.loss_probability = rate;
      job.engine.reliable.enabled = system.reliable;
      // This bench *is* the sampler demo: time series are always on here,
      // --timeseries-out merely adds the artifact files.
      job.engine.timeseries_sample_s = sample_s;
      job.label = std::string(system.name) + "@" + std::to_string(rate);
      jobs.push_back(std::move(job));
    }
  }
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  obs.apply(jobs);
  obs.set_shards(bench::apply_shard_flags(
      jobs, flags.shards(consistency::EngineConfig::ShardConfig::kAuto),
      flags.epoch_s(0.25)));
  const core::BatchRunner runner(
      {.threads = flags.jobs(), .heartbeat_period_s = flags.heartbeat()});
  core::BatchRunStats batch_stats;
  const auto results =
      bench::run_batch_reported(runner, jobs, false, &batch_stats);
  obs.write(results, batch_stats);

  // Extract per-(rate, system) convergence curves from the sampled series:
  // converged(t) = 1 - stale_replicas(t) / replicas.
  const std::size_t n = systems.size();
  std::vector<std::vector<double>> curves(loss_rates.size() * n);
  std::vector<double> final_point(curves.size());
  std::vector<double> curve_min(curves.size(), 1.0);
  std::vector<double> curve_avg(curves.size());
  std::vector<double> span_published(curves.size());
  std::vector<double> span_reached_all(curves.size());
  std::vector<double> span_last_mean_s(curves.size());
  util::ShapeCheck check("ext-convergence");
  for (std::size_t j = 0; j < curves.size(); ++j) {
    const auto& r = results[j].sim;
    const obs::TimeSeriesReport& ts = r.timeseries;
    const std::size_t stale = column_index(ts, "consistency.stale_replicas");
    const std::size_t published =
        column_index(ts, "consistency.updates_published");
    const auto replicas = static_cast<double>(ts.replica_count);
    double sum = 0;
    double published_total = 0;
    for (const auto& row : ts.rows) {
      const double converged = 1.0 - row[stale + 1] / replicas;
      curves[j].push_back(converged);
      curve_min[j] = std::min(curve_min[j], converged);
      sum += converged;
      published_total += row[published + 1];
    }
    final_point[j] = curves[j].back();
    curve_avg[j] = sum / static_cast<double>(curves[j].size());
    // The delta column telescopes to its total — and both must equal the
    // number of versions the span rollups account for.
    check.expect_near(published_total, ts.totals[published], 1e-9,
                      results[j].label + ": published deltas telescope");
    double applied = 0;
    double last_sum = 0;
    for (const auto& s : ts.spans) {
      span_published[j] += static_cast<double>(s.published);
      span_reached_all[j] += static_cast<double>(s.reached_all);
      applied += static_cast<double>(s.applied_versions);
      last_sum += s.last_sum_s;
    }
    span_last_mean_s[j] = applied > 0 ? last_sum / applied : 0;
    check.expect_near(span_published[j], ts.totals[published], 1e-9,
                      results[j].label + ": spans cover every version");
    // Acceptance anchor: the closing sample lands strictly after the last
    // event, so the curve's final point *is* the end-of-run metric.
    check.expect_near(final_point[j], r.converged_server_fraction, 1e-9,
                      results[j].label +
                          ": final curve point == converged_server_fraction");
  }

  // Print the lossy curves on their shared sample grid (12 sampled rows).
  std::size_t min_rows = curves[n].size();
  for (std::size_t i = 0; i < n; ++i) {
    min_rows = std::min(min_rows, curves[n + i].size());
  }
  std::cout << "\n--- converged replica fraction over time (loss " << loss
            << ") ---\n";
  std::vector<std::string> header{"t_s"};
  for (const auto& s : systems) header.push_back(s.name);
  util::TextTable table(header);
  const std::size_t print_rows = std::min<std::size_t>(12, min_rows);
  for (std::size_t r = 0; r < print_rows; ++r) {
    const std::size_t idx =
        print_rows > 1 ? r * (min_rows - 1) / (print_rows - 1) : 0;
    std::vector<double> row{static_cast<double>(idx + 1) * sample_s};
    for (std::size_t i = 0; i < n; ++i) row.push_back(curves[n + i][idx]);
    table.add_row(row, 3);
  }
  table.print(std::cout);

  std::cout << "\n--- propagation spans (loss " << loss << ") ---\n";
  util::TextTable spans({"system", "versions", "reached_all",
                         "mean_last_replica_s", "final_converged",
                         "curve_min", "curve_avg"});
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = n + i;
    spans.add_row(std::vector<std::string>{
        systems[i].name, util::format_double(span_published[j], 0),
        util::format_double(span_reached_all[j], 0),
        util::format_double(span_last_mean_s[j], 3),
        util::format_double(final_point[j], 3),
        util::format_double(curve_min[j], 3),
        util::format_double(curve_avg[j], 3)});
  }
  spans.print(std::cout);

  // Indices: [rate * n + system], systems 0 TTL, 1 Push, 2 Inv, 3 Push+retry.
  // Lossless: Push converges per update within delivery latency, TTL waits
  // out expiry — Push's trajectory dominates TTL's on average.
  check.expect_greater(curve_avg[1], curve_avg[0] - 1e-9,
                       "lossless Push trajectory dominates TTL's");
  check.expect_near(final_point[1], 1.0, 1e-9, "lossless Push ends converged");
  // Every curve must actually *dip*: the time-resolved view shows transient
  // staleness the final metric erases.
  for (std::size_t i = 0; i < n; ++i) {
    check.expect_less(curve_min[n + i], 1.0,
                      std::string(systems[i].name) +
                          " shows transient staleness under loss");
  }
  // Under loss: TTL heals every stranded replica by the next poll, so its
  // curve recovers to 1.0; fire-and-forget Push steps down and stays down.
  check.expect_near(final_point[n + 0], 1.0, 0.01,
                    "TTL recovers fully despite loss");
  check.expect_less(final_point[n + 1], 1.0,
                    "fire-and-forget Push strands replicas under loss");
  // Loss pulls fire-and-forget Push's whole trajectory down (strands
  // accumulate over the run), and by more than it costs TTL, whose every
  // dip heals within a poll period.
  check.expect_less(curve_avg[n + 1], curve_avg[1],
                    "loss degrades Push's whole trajectory");
  check.expect_less(curve_avg[0] - curve_avg[n + 0],
                    curve_avg[1] - curve_avg[n + 1],
                    "TTL's average degradation is smaller than Push's");
  check.expect_near(final_point[n + 3], 1.0, 0.01,
                    "Push+retry restores full convergence");
  check.expect_greater(curve_avg[n + 3], curve_avg[n + 1],
                       "retries lift the whole trajectory, not just the end");
  return bench::finish(check);
}
