// Extension experiment: the Section 6 future-work method, evaluated.
//
// The paper closes by proposing "a more generic hybrid and self-adaptive
// consistency maintenance method that can change the update method ... by
// considering more factors, such as varying visit frequencies". We built it
// (UpdateMethod::kRateAdaptive) and evaluate it here against the paper's
// methods across audience sizes, on the live-game trace:
//
//  * busy audiences — RateAdaptive behaves like TTL (aggregation wins);
//  * sparse audiences — it behaves like Invalidation (on-demand wins),
//    transferring far less content than TTL for the same staleness budget;
//  * across the sweep it should track the lower envelope of the two.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Extension: rate-adaptive method vs audience size (Sec 6)");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  const UpdateMethod methods[4] = {UpdateMethod::kTtl, UpdateMethod::kInvalidation,
                                   UpdateMethod::kSelfAdaptive,
                                   UpdateMethod::kRateAdaptive};
  const char* names[4] = {"TTL", "Invalidation", "SelfAdaptive", "RateAdaptive"};

  std::vector<double> visit_periods{2.0, 10.0, 60.0, 240.0};
  if (flags.small()) visit_periods = {2.0, 240.0};

  // content_km[method][sweep], staleness seen by users.
  std::vector<std::vector<double>> content_km(4);
  std::vector<std::vector<double>> user_staleness(4);

  for (double period : visit_periods) {
    std::cout << "\n--- one viewer per server, visiting every " << period
              << " s ---\n";
    util::TextTable table(
        {"method", "content_load_km", "light_load_km", "user_staleness_s"});
    for (int m = 0; m < 4; ++m) {
      auto ec = bench::section4_config(methods[m], InfrastructureKind::kUnicast);
      ec.method.server_ttl_s = 30.0;
      ec.method.rate_window_s = 120.0;
      ec.users_per_server = 1;
      ec.user_poll_period_s = period;
      ec.user_start_window_s = period;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add(std::string(names[m]) + "/visit=" +
                  util::format_double(period, 0),
              r);
      content_km[m].push_back(r.traffic.load_km_update);
      user_staleness[m].push_back(r.avg_user_inconsistency_s);
      table.add_row(std::vector<std::string>{
          names[m], util::format_double(r.traffic.load_km_update, 0),
          util::format_double(r.traffic.load_km_light, 0),
          util::format_double(r.avg_user_inconsistency_s, 2)});
    }
    table.print(std::cout);
  }

  // Indices: 0 TTL, 1 Invalidation, 2 SelfAdaptive, 3 RateAdaptive.
  const std::size_t busy = 0;
  const std::size_t sparse = visit_periods.size() - 1;
  util::ShapeCheck check("ext-rate-adaptive");
  check.expect_less(content_km[3][sparse], 0.7 * content_km[0][sparse],
                    "sparse audience: RateAdaptive transfers far less than TTL");
  check.expect_less(content_km[3][sparse], 0.8 * content_km[2][sparse],
                    "sparse audience: beats SelfAdaptive too (it still polls "
                    "while play is on)");
  check.expect_near(content_km[3][busy], content_km[0][busy], 0.35,
                    "busy audience: RateAdaptive tracks TTL");
  check.expect_less(user_staleness[3][busy], 2.0 * user_staleness[0][busy] + 5.0,
                    "busy audience: staleness comparable to TTL");
  check.expect_less(content_km[1][sparse], content_km[1][busy],
                    "Invalidation's load falls with audience (sanity)");
  obs.write_direct();
  return bench::finish(check);
}
