// Figure 9: the effect of inter-ISP traffic on inconsistency.
//  (a) CDF of intra-ISP inconsistency (slightly better than Fig. 3)
//  (b,c) per-ISP-cluster 5th/median/95th percentiles, intra vs inter
//  (d) per-cluster averages: inter-ISP exceeds intra-ISP by a few to ~20 s
#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 9: intra-ISP vs inter-ISP inconsistency");

  auto cfg = bench::measurement_config(flags);
  bench::ObsSession obs(argc, argv, flags, cfg.seed);
  cfg.record_trace_events = obs.trace_enabled();
  const auto results = core::run_measurement_study(cfg);

  std::cout << "\n--- (a) CDF of intra-ISP inconsistency ---\n";
  std::vector<double> positive;
  for (double x : results.intra_isp_inconsistency) {
    if (x > 0) positive.push_back(x);
  }
  util::Cdf cdf(positive);
  bench::print_cdf("inconsistency_s", cdf, {1, 10, 20, 30, 40, 50, 60, 80});

  std::cout << "\n--- (b,c,d) per ISP cluster ---\n";
  util::TextTable table({"cluster", "n_intra", "intra_p5", "intra_med", "intra_p95",
                         "intra_avg", "inter_avg", "delta_avg"});
  double clusters_with_gap = 0;
  double clusters_total = 0;
  std::vector<double> deltas;
  for (std::size_t c = 0; c < results.intra_isp_by_cluster.size(); ++c) {
    const auto& intra = results.intra_isp_by_cluster[c];
    const auto& inter = results.inter_isp_by_cluster[c];
    if (intra.samples < 50 || inter.samples < 50) continue;
    table.add_row({static_cast<double>(c), static_cast<double>(intra.samples),
                   intra.p5, intra.median, intra.p95, intra.mean, inter.mean,
                   inter.mean - intra.mean},
                  2);
    clusters_total += 1;
    if (inter.mean > intra.mean) clusters_with_gap += 1;
    deltas.push_back(inter.mean - intra.mean);
  }
  table.print(std::cout);
  std::cout << "\navg inter-minus-intra = " << util::mean(deltas)
            << " s  (paper: +3.69 to +23.2 s)\n";

  util::ShapeCheck check("fig9");
  check.expect_greater(clusters_total, 3.0, "enough populated ISP clusters");
  check.expect_greater(clusters_with_gap / std::max(1.0, clusters_total), 0.7,
                       "inter-ISP exceeds intra-ISP in most clusters");
  check.expect_in_range(util::mean(deltas), 0.5, 30.0,
                        "average inter-ISP penalty in the paper's range");
  obs.write_study("fig09", results.metrics, &results.trace);
  return bench::finish(check);
}
