// Extension experiment: infrastructure robustness under server churn.
//
// Section 1 of the paper argues that multicast trees trade message economy
// for fragility: "node failures break the structure connectivity and lead
// to unsuccessful update propagation. Aside from node failures, the
// structure maintenance will incur high overhead". This bench quantifies
// that trade-off, which the paper discusses but does not measure:
//
//  * unicast is immune to peer failures (only the crashed node suffers);
//  * multicast without repair starves whole subtrees while an interior node
//    is down;
//  * multicast and HAT with the Section 5.2 repair rule stay consistent but
//    pay tree-maintenance traffic that grows with the churn rate.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Extension: robustness under infrastructure churn");

  auto eval = bench::evaluation_setup(flags);
  const double downtime = flags.get("downtime", 180.0);

  struct SystemRow {
    const char* name;
    UpdateMethod method;
    InfrastructureKind infra;
    bool repair;
  };
  const std::vector<SystemRow> systems{
      {"Push+Unicast", UpdateMethod::kPush, InfrastructureKind::kUnicast, true},
      {"Push+Multicast(no repair)", UpdateMethod::kPush,
       InfrastructureKind::kMulticastTree, false},
      {"Push+Multicast(repair)", UpdateMethod::kPush,
       InfrastructureKind::kMulticastTree, true},
      {"HAT(repair)", UpdateMethod::kSelfAdaptive,
       InfrastructureKind::kHybridSupernode, true},
  };

  std::vector<double> churn_rates{0.0, 60.0, 240.0, 960.0};
  if (flags.small()) churn_rates = {0.0, 240.0};

  // One job per (rate, system) grid point, all sharing the scenario and the
  // trace read-only; the batch runner spreads them over --jobs threads.
  std::vector<core::BatchJob> jobs;
  jobs.reserve(churn_rates.size() * systems.size());
  for (double rate : churn_rates) {
    for (const auto& system : systems) {
      core::BatchJob job;
      job.shared_nodes = eval.scenario.nodes.get();
      job.shared_trace = &eval.game;
      job.engine = bench::section4_config(system.method, system.infra);
      job.engine.churn.failures_per_hour = rate;
      job.engine.churn.downtime_mean_s = downtime;
      job.engine.churn.repair_enabled = system.repair;
      job.engine.tail_s = 600.0;
      job.label = std::string(system.name) + "@" + std::to_string(rate);
      jobs.push_back(std::move(job));
    }
  }
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  obs.apply(jobs);
  // Sharded driver where supported: the rate-0 baseline jobs run sharded,
  // churn jobs (> 0 failures/hour) stay classic — apply_shard_flags probes
  // each job and records the split in the manifest.
  obs.set_shards(bench::apply_shard_flags(
      jobs, flags.shards(consistency::EngineConfig::ShardConfig::kAuto),
      flags.epoch_s(0.25)));
  const core::BatchRunner runner(
      {.threads = flags.jobs(), .heartbeat_period_s = flags.heartbeat()});
  core::BatchRunStats batch_stats;
  const auto results =
      bench::run_batch_reported(runner, jobs, false, &batch_stats);
  obs.write(results, batch_stats);

  // inconsistency[system][rate]
  std::vector<std::vector<double>> inconsistency(systems.size());
  std::vector<std::vector<double>> maintenance(systems.size());

  std::size_t job_index = 0;
  for (double rate : churn_rates) {
    std::cout << "\n--- churn rate " << rate << " failures/hour (downtime ~"
              << downtime << " s) ---\n";
    util::TextTable table({"system", "avg_inconsistency_s", "failures",
                           "light_msgs", "converged_frac"});
    for (std::size_t i = 0; i < systems.size(); ++i) {
      const auto& r = results[job_index++].sim;
      inconsistency[i].push_back(r.avg_server_inconsistency_s);
      maintenance[i].push_back(static_cast<double>(r.traffic.light_messages));
      table.add_row(std::vector<std::string>{
          systems[i].name, util::format_double(r.avg_server_inconsistency_s, 3),
          std::to_string(r.failures_injected),
          std::to_string(r.traffic.light_messages),
          util::format_double(r.converged_server_fraction, 3)});
    }
    table.print(std::cout);
  }

  // Indices: 0 unicast, 1 multicast-no-repair, 2 multicast-repair, 3 HAT.
  // Every system pays each node's *own* downtime (a crashed replica is stale
  // until it returns and resyncs); the structural question is how much a
  // failure hurts *other* nodes. Unicast is the immune baseline.
  util::ShapeCheck check("ext-churn");
  const std::size_t last = churn_rates.size() - 1;
  check.expect_greater(inconsistency[1][last], 3.0 * inconsistency[2][last],
                       "unrepaired multicast starves subtrees; repair fixes it");
  check.expect_near(inconsistency[2][last], inconsistency[0][last], 0.25,
                    "repaired multicast matches the unicast (own-downtime) floor");
  check.expect_less(inconsistency[3][last], 1.5 * inconsistency[0][last],
                    "HAT with supernode failover stays near the unicast floor");
  check.expect_greater(maintenance[2][last], maintenance[2][0],
                       "repair costs maintenance traffic that grows with churn");
  check.expect_less(inconsistency[3][last], inconsistency[1][last],
                    "HAT with failover beats unrepaired multicast");
  return bench::finish(check);
}
