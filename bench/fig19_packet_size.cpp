// Figure 19: scalability vs update-packet size (1 KB - 500 KB).
//  (a) unicast: inconsistency grows with packet size at rate
//      Push > Invalidation > TTL — Push serializes one copy per server at
//      the provider uplink, Invalidation only pushes light notices, TTL
//      polls are spread over [0, TTL];
//  (b) multicast: same ordering but far smaller growth (each node forwards
//      to only d=2 children instead of 170).
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 19: content-server inconsistency vs update packet size");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  const std::vector<double> sizes{1.0, 100.0, 500.0};
  const UpdateMethod methods[3] = {UpdateMethod::kPush, UpdateMethod::kInvalidation,
                                   UpdateMethod::kTtl};

  double grow[2][3];  // [infra][method] inconsistency increase across sweep
  int infra_idx = 0;
  for (auto infra : {InfrastructureKind::kUnicast,
                     InfrastructureKind::kMulticastTree}) {
    std::cout << "\n--- ("
              << (infra == InfrastructureKind::kUnicast ? "a) unicast"
                                                        : "b) multicast")
              << " ---\n";
    util::TextTable table({"packet_kb", "Push_s", "Invalidation_s", "TTL_s"});
    std::vector<std::vector<double>> by_method(3);
    for (double size : sizes) {
      std::vector<double> row{size};
      for (int m = 0; m < 3; ++m) {
        auto ec = bench::section4_config(methods[m], infra);
        ec.update_packet_kb = size;
        // A 100 Mbit/s provider uplink carries even TTL's worst-case
        // sustained content load at 500 KB packets; the figure isolates the
        // *burstiness* of each method, not congestion collapse.
        ec.provider_uplink_kbps = 12500.0;
        ec.server_uplink_kbps = 12500.0;
        obs.configure(ec);
        const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
        obs.add((infra == InfrastructureKind::kUnicast ? "unicast/"
                                                       : "multicast/") +
                    util::format_double(size, 0) + "kb/" +
                    std::string(to_string(methods[m])),
                r);
        row.push_back(r.avg_server_inconsistency_s);
        by_method[m].push_back(r.avg_server_inconsistency_s);
      }
      table.add_row(row, 3);
    }
    table.print(std::cout);
    for (int m = 0; m < 3; ++m) {
      grow[infra_idx][m] = by_method[m].back() - by_method[m].front();
    }
    ++infra_idx;
  }

  util::ShapeCheck check("fig19");
  check.expect_greater(grow[0][0], grow[0][1],
                       "(a) Push grows faster than Invalidation (unicast)");
  check.expect_greater(grow[0][1], grow[0][2] - 0.05,
                       "(a) Invalidation grows at least as fast as TTL (unicast)");
  check.expect_greater(grow[0][0], 1.0,
                       "(a) 500 KB pushes visibly congest the provider uplink");
  check.expect_less(grow[1][0], 0.5 * grow[0][0],
                    "(b) multicast dampens Push's packet-size sensitivity");
  obs.write_direct();
  return bench::finish(check);
}
