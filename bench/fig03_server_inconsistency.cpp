// Figure 3: CDF of inconsistency lengths of data served by the CDN.
//
// Paper findings: only ~10% of requests have inconsistency below 10 s,
// ~20% exceed 50 s, and the average is ~40 s — TTL(60 s) polling dominates,
// with absences / origin staleness adding a tail.
#include "bench_common.hpp"
#include "bench_measurement.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 3: inconsistency of data served by the CDN (15-day crawl)");

  auto cfg = bench::measurement_config(flags);
  bench::ObsSession obs(argc, argv, flags, cfg.seed);
  cfg.record_trace_events = obs.trace_enabled();
  const auto results = core::run_measurement_study(cfg);

  // The paper plots the CDF over requests that served outdated content.
  std::vector<double> positive;
  for (double x : results.request_inconsistency) {
    if (x > 0) positive.push_back(x);
  }
  util::Cdf cdf(positive);
  bench::print_cdf("inconsistency_s", cdf,
                   {1, 5, 10, 20, 30, 40, 50, 60, 80, 100, 200, 500});

  const double mean = cdf.mean();
  std::cout << "\nsamples=" << cdf.count() << "  mean=" << mean
            << "s  median=" << cdf.value_at_quantile(0.5) << "s\n";

  util::ShapeCheck check("fig3");
  check.expect_in_range(cdf.fraction_at_or_below(10.0), 0.03, 0.40,
                        "only a small share of requests below 10 s");
  check.expect_greater(1.0 - cdf.fraction_at_or_below(50.0), 0.10,
                       "a substantial share exceeds 50 s");
  check.expect_in_range(mean, 25.0, 55.0,
                        "mean inconsistency ~40 s (TTL-dominated)");
  check.expect_greater(cdf.max(), 60.0,
                       "tail beyond one TTL exists (absences etc.)");
  obs.write_study("fig03", results.metrics, &results.trace);
  return bench::finish(check);
}
