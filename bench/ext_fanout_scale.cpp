// Extension experiment: topic fan-out at scale (ROADMAP item 2).
//
// The paper's HAT infrastructure could only be measured at ~170 servers.
// This sweep drives the pub/sub layer itself — pubsub::Topic /
// pubsub::UpdateLog / pubsub::Fanout / pubsub::FlowController over a
// net::Uplink transport in a discrete-event sim — to 10^3..10^6
// subscribers per topic, the regime where the engine's nearest-neighbour
// tree construction cannot follow but the delivery layer's own
// bottlenecks appear:
//
//  * fan-out latency: one relay serializes every copy through its uplink,
//    so the last subscriber's delivery lag grows linearly with the
//    subscriber count — past the knee (wave time > update gap) the
//    backlog compounds across updates;
//  * ack-implosion: reliable delivery (Push+retry) adds one ack per copy
//    plus retries, roughly doubling the message count exactly where the
//    uplink is already the binding resource;
//  * backpressure: with a credit window, subscribers whose previous copy
//    has not settled stop receiving live pushes (suppressed, marked
//    lagging) and instead tail the topic's UpdateLog on drain — stranded
//    replicas become bounded-staleness catch-up and every cursor still
//    reaches the head.
//
// Grid: subscribers x {Push, Invalidation, Push+retry} x flow {off, on}.
// Push fans out full content packets, Invalidation only small notices,
// Push+retry adds per-copy loss with ack-timeout retries and give-ups.
//
// Determinism: each cell is one single-threaded sim; --jobs parallelizes
// whole cells (results land in submission order), and --shards selects the
// subscriber-lane count used to fold the latency accounting (integer
// microsecond sums, so the fold is exact and byte-identical for every
// lane count). tier1.sh cmp's the --small artifacts across both axes.
//
// Scale note: flow-off copies need no event each — nothing reacts to a
// fire-and-forget arrival, so their bookkeeping happens inline at publish
// time and only retry chains and flow-on settles occupy the event queue.
// That keeps the 10^6-subscriber acceptance run's queue bounded by the
// credit window instead of the raw copy count.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_obs.hpp"
#include "core/batch_runner.hpp"
#include "net/uplink.hpp"
#include "obs/metrics.hpp"
#include "pubsub/pubsub.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cdnsim;

struct CellConfig {
  std::string label;
  std::size_t subscribers = 0;
  double packet_kb = 1.0;  // per fan-out copy (content or notice)
  bool reliable = false;   // acks, per-copy loss, timeout retries
  double loss = 0.0;
  std::uint32_t flow_window = 0;  // 0 = flow control off
  std::size_t updates = 6;
  double gap_s = 10.0;
  double uplink_kbps = 2500.0;
  double ack_timeout_s = 1.0;
  std::size_t max_retries = 2;
  double catchup_retry_s = 2.0;
  std::size_t log_capacity = pubsub::Topic::kDefaultLogCapacity;
  std::size_t lanes = 1;
  std::uint64_t seed = 42;
};

// Per-lane latency fold in integer microseconds: u64 addition is exact and
// associative, so folding lane partials in lane order yields bytes
// independent of the lane count — the same contract the engine's sharded
// lane counters satisfy.
struct LaneAccum {
  std::uint64_t sum_us = 0;
  std::uint64_t count = 0;
  std::uint64_t max_us = 0;
};

struct CellResult {
  pubsub::FanoutStats stats;
  std::uint64_t messages = 0;  // fan-out copies (live + catch-up + retries)
  std::uint64_t acks = 0;
  std::uint64_t retries = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t delivery_sum_us = 0;
  std::uint64_t delivery_count = 0;
  std::uint64_t delivery_max_us = 0;
  double wave_span_mean_s = 0;  // publish -> last live arrival, per update
  double converged_fraction = 0;
  double sim_end_s = 0;
  std::uint64_t events = 0;
};

// One grid cell: a single relay's topic driven through the real pub/sub
// walker over a FIFO uplink. Mirrors the engine's delivery path — reserve
// the relay uplink, arrive after the per-subscriber delay, settle the
// credit (sender-side for lossless transports, via the ack for reliable
// ones), tail the log head when the walker says so.
class Cell {
 public:
  explicit Cell(const CellConfig& c)
      : c_(c),
        uplink_(c.uplink_kbps),
        topic_(c.log_capacity),
        flow_(c.flow_window),
        fanout_(topic_, &flow_, result_.stats),
        rng_(c.seed),
        lanes_(std::max<std::size_t>(c.lanes, 1)),
        publish_time_(c.updates + 1, 0),
        last_live_arrival_(c.updates + 1, 0),
        received_(c.subscribers, 0) {
    for (std::size_t i = 0; i < c.subscribers; ++i) {
      topic_.add(static_cast<std::int32_t>(i), /*gated=*/false);
    }
  }

  CellResult run() {
    for (std::size_t k = 1; k <= c_.updates; ++k) {
      const double t = static_cast<double>(k) * c_.gap_s;
      publish_time_[k] = t;
      sim_.at(t, [this, k, t] { publish(k, t); });
    }
    sim_.run();
    finish();
    return result_;
  }

 private:
  using SubscriberId = pubsub::SubscriberId;
  using SequenceNumber = pubsub::SequenceNumber;

  void publish(std::size_t k, double t) {
    const auto seq = static_cast<SequenceNumber>(k);
    fanout_.publish(
        seq, t, [](const pubsub::Subscriber&) { return true; },
        [this, seq](SubscriberId id, pubsub::Subscriber&) {
          attempt(id, seq, /*catch_up=*/false, 0);
        });
  }

  void attempt(SubscriberId id, SequenceNumber seq, bool catch_up,
               std::size_t try_index) {
    ++result_.messages;
    const bool lost = c_.reliable && rng_.chance(c_.loss);
    const double depart = uplink_.reserve(sim_.now(), c_.packet_kb);
    const double arrival = depart + delay_of(id);
    if (lost) {
      const double deadline =
          depart + c_.ack_timeout_s * static_cast<double>(1u << try_index);
      if (try_index < c_.max_retries) {
        ++result_.retries;
        sim_.at(deadline, [this, id, seq, catch_up, try_index] {
          attempt(id, seq, catch_up, try_index + 1);
        });
      } else {
        ++result_.give_ups;
        sim_.at(deadline, [this, id, seq, catch_up] {
          settle(id, seq, false, catch_up);
        });
      }
      return;
    }
    if (c_.reliable) ++result_.acks;
    if (flow_.enabled()) {
      // The credit releases when the sender learns of the delivery: at the
      // ack's return for reliable transports, at the nominal arrival for
      // fire-and-forget ones (the engine's sender-side settle).
      const double settle_at =
          c_.reliable ? arrival + delay_of(id) : arrival;
      sim_.at(settle_at, [this, id, seq, catch_up, arrival] {
        record_delivery(id, seq, catch_up, arrival);
        settle(id, seq, true, catch_up);
      });
    } else {
      // Fire-and-forget: nothing reacts to the arrival, so the
      // bookkeeping needs no event.
      record_delivery(id, seq, catch_up, arrival);
    }
  }

  void settle(SubscriberId id, SequenceNumber seq, bool ok, bool catch_up) {
    if (!flow_.enabled()) return;
    if (fanout_.settle(id, seq, ok, catch_up)) {
      attempt(id, topic_.log().last_seq(), /*catch_up=*/true, 0);
    } else if (!ok) {
      // Credit released but the subscriber still trails the head: re-arm
      // the catch-up (the engine's reliable path does this too, the retry
      // backoff having already spaced the attempts out).
      sim_.after(c_.catchup_retry_s, [this, id] {
        if (fanout_.begin_catch_up(id)) {
          attempt(id, topic_.log().last_seq(), /*catch_up=*/true, 0);
        }
      });
    }
  }

  void record_delivery(SubscriberId id, SequenceNumber seq, bool catch_up,
                       double arrival) {
    received_[id] = std::max(received_[id], seq);
    // Delivery lag measured against the version's publish instant: for a
    // catch-up copy this *is* the subscriber's staleness at confirm time.
    const double published =
        seq <= c_.updates ? publish_time_[seq] : 0;
    const auto us = static_cast<std::uint64_t>((arrival - published) * 1e6);
    LaneAccum& lane = lanes_[static_cast<std::size_t>(id) * lanes_.size() /
                             c_.subscribers];
    lane.sum_us += us;
    ++lane.count;
    lane.max_us = std::max(lane.max_us, us);
    if (!catch_up && seq <= c_.updates) {
      last_live_arrival_[seq] = std::max(last_live_arrival_[seq], arrival);
    }
  }

  void finish() {
    for (const LaneAccum& lane : lanes_) {
      result_.delivery_sum_us += lane.sum_us;
      result_.delivery_count += lane.count;
      result_.delivery_max_us = std::max(result_.delivery_max_us, lane.max_us);
    }
    double span_sum = 0;
    std::size_t span_n = 0;
    for (std::size_t k = 1; k <= c_.updates; ++k) {
      if (last_live_arrival_[k] > 0) {
        span_sum += last_live_arrival_[k] - publish_time_[k];
        ++span_n;
      }
    }
    result_.wave_span_mean_s =
        span_n > 0 ? span_sum / static_cast<double>(span_n) : 0;
    std::size_t converged = 0;
    for (std::size_t i = 0; i < c_.subscribers; ++i) {
      if (received_[i] == c_.updates) ++converged;
    }
    result_.converged_fraction =
        static_cast<double>(converged) / static_cast<double>(c_.subscribers);
    result_.sim_end_s = sim_.now();
    result_.events = sim_.events_processed();
  }

  // Per-subscriber propagation delay, a pure function of the id (no RNG,
  // so the loss stream's draw order is untouched by the grid shape).
  static double delay_of(SubscriberId id) {
    return 0.02 + 0.06 * static_cast<double>((id * 2654435761u) % 997) / 997.0;
  }

  CellConfig c_;
  sim::Simulator sim_;
  net::Uplink uplink_;
  pubsub::Topic topic_;
  pubsub::FlowController flow_;
  CellResult result_;
  pubsub::Fanout fanout_;
  util::Rng rng_;
  std::vector<LaneAccum> lanes_;
  std::vector<double> publish_time_;
  std::vector<double> last_live_arrival_;
  std::vector<SequenceNumber> received_;
};

core::SimulationResult to_sim_result(const CellConfig& c,
                                     const CellResult& r) {
  core::SimulationResult out;
  obs::MetricsRegistry& m = out.metrics;
  m.counter("pubsub.live_deliveries").inc(r.stats.live_deliveries);
  m.counter("pubsub.suppressed_deliveries").inc(r.stats.suppressed_deliveries);
  m.counter("pubsub.catch_up_messages").inc(r.stats.catch_up_messages);
  m.counter("pubsub.catch_up_reads").inc(r.stats.catch_up_reads);
  m.counter("pubsub.skipped_ahead").inc(r.stats.skipped_ahead);
  m.counter("pubsub.lagging_enter").inc(r.stats.lagging_enter);
  m.counter("pubsub.lagging_exit").inc(r.stats.lagging_exit);
  m.gauge("pubsub.lagging_subscribers")
      .set(static_cast<double>(r.stats.lagging_enter - r.stats.lagging_exit));
  m.gauge("pubsub.subscriptions").set(static_cast<double>(c.subscribers));
  m.counter("fanout.messages").inc(r.messages);
  m.counter("fanout.acks").inc(r.acks);
  m.counter("reliable.retries").inc(r.retries);
  m.counter("reliable.give_ups").inc(r.give_ups);
  const double mean_s =
      r.delivery_count > 0 ? static_cast<double>(r.delivery_sum_us) /
                                 static_cast<double>(r.delivery_count) / 1e6
                           : 0;
  m.gauge("fanout.delivery_latency_mean_s").set(mean_s);
  m.gauge("fanout.delivery_latency_max_s")
      .set(static_cast<double>(r.delivery_max_us) / 1e6);
  m.gauge("fanout.wave_span_mean_s").set(r.wave_span_mean_s);
  m.gauge("fanout.converged_fraction").set(r.converged_fraction);
  out.avg_server_inconsistency_s = mean_s;
  out.converged_server_fraction = r.converged_fraction;
  out.traffic.update_messages = r.messages;
  out.traffic.light_messages = r.acks;
  out.events_processed = r.events;
  out.simulated_time_s = r.sim_end_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdnsim;
  const bench::Flags flags(argc, argv);
  bench::banner(
      "Extension: pub/sub fan-out at scale — subscribers x system x flow");

  // --subscribers pins a single count (the 10^6 acceptance run); default
  // grids keep the congestion knee (wave time vs --gap) inside the sweep.
  std::vector<std::size_t> grid =
      flags.small() ? std::vector<std::size_t>{1000, 3000}
                    : std::vector<std::size_t>{1000, 10000, 100000};
  if (const int pinned = flags.get_int("subscribers", 0); pinned > 0) {
    grid = {static_cast<std::size_t>(pinned)};
  }
  const auto window =
      static_cast<std::uint32_t>(flags.get_int("flow-window", 1));
  const double gap_s = flags.get("gap", flags.small() ? 0.5 : 10.0);
  const auto updates = static_cast<std::size_t>(flags.get_int("updates", 6));
  const double loss = flags.get("loss", 0.25);
  const double uplink = flags.get("uplink", 2500.0);
  const double packet = flags.get("packet", 1.0);
  const double light = flags.get("light", 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // --shards picks the latency-fold lane count (auto = hardware threads);
  // the fold is integer-exact, so every selection is byte-identical.
  const int shard_sel = flags.shards(0);
  const std::size_t lanes = shard_sel > 0
                                ? static_cast<std::size_t>(shard_sel)
                                : util::ThreadPool::hardware_threads();

  struct SystemRow {
    const char* name;
    double packet_kb;
    bool reliable;
  };
  const std::vector<SystemRow> systems{
      {"Push", packet, false},
      {"Invalidation", light, false},
      {"Push+retry", packet, true},
  };

  std::vector<CellConfig> cells;
  for (const std::size_t n : grid) {
    for (const auto& sys : systems) {
      for (const bool flow_enabled : {false, true}) {
        CellConfig c;
        c.subscribers = n;
        c.packet_kb = sys.packet_kb;
        c.reliable = sys.reliable;
        c.loss = sys.reliable ? loss : 0.0;
        c.flow_window = flow_enabled ? window : 0;
        c.updates = updates;
        c.gap_s = gap_s;
        c.uplink_kbps = uplink;
        c.lanes = lanes;
        c.seed = seed;
        c.label = std::string(sys.name) + "/" +
                  (flow_enabled ? "flow-on" : "flow-off") + "/n=" +
                  std::to_string(n);
        cells.push_back(std::move(c));
      }
    }
  }

  // --jobs parallelizes whole cells; each is one self-contained sim, and
  // results land in submission order, so the artifacts cannot depend on
  // the thread count.
  std::vector<CellResult> results(cells.size());
  {
    util::ThreadPool pool(flags.jobs());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      pool.submit(
          [&cells, &results, i] { results[i] = Cell(cells[i]).run(); });
    }
    pool.wait_idle();
  }

  bench::ObsSession obs(argc, argv, flags, seed);
  obs.set_shards(shard_sel > 0 ? "fanout-lanes:" + std::to_string(shard_sel)
                               : "fanout-lanes:auto");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    obs.add(cells[i].label, to_sim_result(cells[i], results[i]));
  }

  const std::size_t per_n = systems.size() * 2;
  const auto cell_at = [&](std::size_t n_idx, std::size_t sys_idx,
                           bool flow_enabled) -> const CellResult& {
    return results[n_idx * per_n + sys_idx * 2 + (flow_enabled ? 1 : 0)];
  };

  for (std::size_t ni = 0; ni < grid.size(); ++ni) {
    std::cout << "\n--- " << grid[ni] << " subscribers per topic (gap "
              << gap_s << " s) ---\n";
    util::TextTable table({"system", "flow", "messages", "acks", "retries",
                           "suppressed", "catch_up", "wave_span_s",
                           "lat_mean_s", "converged"});
    for (std::size_t si = 0; si < systems.size(); ++si) {
      for (const bool fl : {false, true}) {
        const CellResult& r = cell_at(ni, si, fl);
        const double mean =
            r.delivery_count > 0
                ? static_cast<double>(r.delivery_sum_us) /
                      static_cast<double>(r.delivery_count) / 1e6
                : 0;
        table.add_row(std::vector<std::string>{
            systems[si].name, fl ? "on" : "off", std::to_string(r.messages),
            std::to_string(r.acks), std::to_string(r.retries),
            std::to_string(r.stats.suppressed_deliveries),
            std::to_string(r.stats.catch_up_messages),
            util::format_double(r.wave_span_mean_s, 3),
            util::format_double(mean, 3),
            util::format_double(r.converged_fraction, 4)});
      }
    }
    table.print(std::cout);
  }

  util::ShapeCheck check("ext-fanout-scale");
  const std::size_t last = grid.size() - 1;

  // Fan-out latency grows with the subscriber count: the relay serializes
  // every copy, so each decade of subscribers widens the delivery wave.
  for (std::size_t ni = 1; ni < grid.size(); ++ni) {
    check.expect_greater(cell_at(ni, 0, false).wave_span_mean_s,
                         cell_at(ni - 1, 0, false).wave_span_mean_s,
                         "Push wave span grows from " +
                             std::to_string(grid[ni - 1]) + " to " +
                             std::to_string(grid[ni]) + " subscribers");
  }
  // The knee is inside the sweep: at the top count the wave outlasts the
  // update gap, which is what makes flow control bite there.
  check.expect_greater(cell_at(last, 0, false).wave_span_mean_s, gap_s,
                       "top-count Push wave outlasts the update gap");
  // Invalidation fans out notices, not content: same subscribers, narrower
  // wave.
  check.expect_less(cell_at(last, 1, false).wave_span_mean_s,
                    cell_at(last, 0, false).wave_span_mean_s,
                    "notice fan-out beats content fan-out");

  // Flow off: the walker does no bookkeeping at all.
  for (std::size_t ni = 0; ni < grid.size(); ++ni) {
    for (std::size_t si = 0; si < systems.size(); ++si) {
      const CellResult& r = cell_at(ni, si, false);
      check.expect(r.stats.suppressed_deliveries == 0 &&
                       r.stats.catch_up_messages == 0,
                   "flow-off never suppresses or tails (" +
                       cells[ni * per_n + si * 2].label + ")");
    }
  }

  // Flow on at the top count: live pushes are suppressed, the log is
  // tailed, and backpressure still converges every cursor to the head.
  {
    const CellResult& on = cell_at(last, 0, true);
    const CellResult& off = cell_at(last, 0, false);
    check.expect_greater(static_cast<double>(on.stats.suppressed_deliveries),
                         0, "window suppresses live pushes past the knee");
    check.expect_greater(static_cast<double>(on.stats.catch_up_messages), 0,
                         "suppressed subscribers tail the update log");
    check.expect_greater(static_cast<double>(on.stats.catch_up_reads), 0,
                         "catch-up replays retained log entries");
    check.expect_less(static_cast<double>(on.messages),
                      static_cast<double>(off.messages),
                      "flow control bounds total fan-out traffic");
    check.expect_near(on.converged_fraction, 1.0, 1e-9,
                      "every flow-on subscriber converges to the head");
    check.expect(on.stats.lagging_enter == on.stats.lagging_exit,
                 "the lagging set drains by end of run");
  }

  // Ack-implosion: reliable delivery roughly doubles the message count at
  // the same subscriber count (one ack per copy, plus retries).
  {
    const CellResult& push = cell_at(last, 0, false);
    const CellResult& retry = cell_at(last, 2, false);
    check.expect_greater(static_cast<double>(retry.acks), 0,
                         "reliable mode acks every delivery");
    check.expect_greater(static_cast<double>(retry.retries), 0,
                         "loss forces timeout retries");
    check.expect_greater(
        static_cast<double>(retry.messages + retry.acks),
        1.5 * static_cast<double>(push.messages),
        "ack-implosion: reliable traffic >= 1.5x fire-and-forget");
    // Fire-and-forget give-ups strand replicas; the credit window converts
    // those strands into catch-up and recovers them all.
    check.expect_less(retry.converged_fraction, 1.0,
                      "flow-off give-ups strand replicas");
    check.expect_near(cell_at(last, 2, true).converged_fraction, 1.0, 1e-9,
                      "flow-on catch-up recovers every stranded replica");
  }

  obs.write_direct();
  return bench::finish(check);
}
