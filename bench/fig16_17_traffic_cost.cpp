// Figures 16 & 17: consistency-maintenance traffic cost (km x KB).
//  16 — total cost per method x infrastructure: multicast saves large
//       amounts over unicast for every method; cost orders
//       Push < Invalidation < TTL under the trace's frequent updates;
//  17 — TTL method: cost decreases as the content-server TTL grows.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Figures 16-17: consistency maintenance traffic cost (km*KB)");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  std::cout << "\n--- Fig 16: total traffic cost ---\n";
  util::TextTable cost_table({"method", "unicast_km_kb", "multicast_km_kb"});
  double cost[3][2];
  const char* names[3] = {"Push", "Invalidation", "TTL"};
  const UpdateMethod methods[3] = {UpdateMethod::kPush, UpdateMethod::kInvalidation,
                                   UpdateMethod::kTtl};
  for (int m = 0; m < 3; ++m) {
    int i = 0;
    for (auto infra : {InfrastructureKind::kUnicast,
                       InfrastructureKind::kMulticastTree}) {
      auto ec = bench::section4_config(methods[m], infra);
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add(std::string("fig16/") + names[m] + (i == 0 ? "/unicast" : "/multicast"), r);
      cost[m][i++] = r.traffic.cost_km_kb;
    }
    cost_table.add_row(std::vector<std::string>{
        names[m], util::format_double(cost[m][0], 0),
        util::format_double(cost[m][1], 0)});
  }
  cost_table.print(std::cout);

  std::cout << "\n--- Fig 17: TTL method cost vs content-server TTL ---\n";
  util::TextTable ttl_table({"ttl_s", "unicast_km_kb", "multicast_km_kb"});
  std::vector<double> unicast_sweep, multicast_sweep;
  for (double ttl : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    double row[2];
    int i = 0;
    for (auto infra : {InfrastructureKind::kUnicast,
                       InfrastructureKind::kMulticastTree}) {
      auto ec = bench::section4_config(UpdateMethod::kTtl, infra);
      ec.method.server_ttl_s = ttl;
      obs.configure(ec);
      const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
      obs.add("fig17/ttl=" + util::format_double(ttl, 0) +
                  (i == 0 ? "/unicast" : "/multicast"),
              r);
      row[i++] = r.traffic.cost_km_kb;
    }
    ttl_table.add_row({ttl, row[0], row[1]}, 0);
    unicast_sweep.push_back(row[0]);
    multicast_sweep.push_back(row[1]);
  }
  ttl_table.print(std::cout);

  util::ShapeCheck check("fig16-17");
  for (int m = 0; m < 3; ++m) {
    check.expect_less(cost[m][1], cost[m][0],
                      std::string("16: multicast cheaper for ") + names[m]);
  }
  check.expect_less(cost[0][0], cost[1][0],
                    "16: Push < Invalidation in unicast cost");
  check.expect_less(cost[1][0], cost[2][0],
                    "16: Invalidation < TTL in unicast cost");
  check.expect_less(unicast_sweep.back(), 0.5 * unicast_sweep.front(),
                    "17: cost falls substantially as TTL grows (unicast)");
  check.expect_less(multicast_sweep.back(), 0.5 * multicast_sweep.front(),
                    "17: cost falls substantially as TTL grows (multicast)");
  obs.write_direct();
  return bench::finish(check);
}
