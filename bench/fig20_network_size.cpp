// Figure 20: scalability vs network size (170 - 850 servers).
//  (a) unicast: inconsistency grows with server count at rate
//      Push > Invalidation, while TTL stays flat (polls spread over the
//      TTL window keep the provider unloaded);
//  (b) multicast: TTL now grows fastest — more servers deepen the tree and
//      inconsistency is proportional to depth with an amplification factor
//      in [0, TTL].
//
// The sweep is the repo's heaviest grid (10 scenario sizes x methods), so it
// submits through core::BatchRunner: pass --jobs N (0 = all cores) to run
// the grid in parallel; the numbers are identical for every N.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 20: content-server inconsistency vs network size");

  std::vector<std::size_t> sizes{170, 340, 510, 680, 850};
  if (flags.small()) sizes = {60, 120, 240};
  if (flags.large()) {
    // Scalability stress: 10 sizes up to 10x the paper's largest network.
    sizes.clear();
    for (std::size_t k = 1; k <= 10; ++k) sizes.push_back(k * 850);
  }
  // Larger content packets make provider fanout the binding resource, as on
  // the paper's bandwidth-constrained PlanetLab nodes. The 100 Mbit/s uplink
  // still covers TTL's worst-case sustained load at 850 servers, so TTL
  // stays flat while the push-at-once methods queue.
  const double packet_kb = flags.get("packet", 100.0);
  const double uplink_kbps = flags.get("uplink", 12500.0);
  // --shards auto|N selects the engine's intra-run sharded driver ("auto",
  // the default, sizes lanes per job from server count x hardware threads);
  // --epoch-s sets the barrier pitch. Results are byte-identical for every
  // accepted value and every worker count — tier1.sh cmp-checks the
  // --small artifacts across the grid.
  const int shards =
      flags.shards(consistency::EngineConfig::ShardConfig::kAuto);
  const double shard_epoch_s = flags.epoch_s(0.25);

  const UpdateMethod methods[3] = {UpdateMethod::kPush, UpdateMethod::kInvalidation,
                                   UpdateMethod::kTtl};
  const InfrastructureKind infras[2] = {InfrastructureKind::kUnicast,
                                        InfrastructureKind::kMulticastTree};

  // --seed varies the game trace (the tier-1 obs stage diffs two seeds to
  // check obs_diff.py flags real metric deltas). Scenario seeds stay fixed.
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));
  util::Rng trace_rng(seed);
  trace::GameTraceConfig game_cfg;
  game_cfg.bursty = false;  // Section 4's individually-delivered updates
  const auto game = trace::generate_game_trace(game_cfg, trace_rng);

  // Scenarios are built once per size and shared read-only across the grid.
  std::vector<core::Scenario> scenarios;
  scenarios.reserve(sizes.size());
  for (std::size_t n : sizes) {
    core::ScenarioConfig sc;
    sc.server_count = n;
    sc.seed = 42;
    scenarios.push_back(core::build_scenario(sc));
  }

  // One job per (infrastructure, size, method) grid point.
  std::vector<core::BatchJob> jobs;
  jobs.reserve(2 * sizes.size() * 3);
  for (auto infra : infras) {
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      for (int m = 0; m < 3; ++m) {
        core::BatchJob job;
        job.shared_nodes = scenarios[si].nodes.get();
        job.shared_trace = &game;
        job.engine = bench::section4_config(methods[m], infra);
        job.engine.update_packet_kb = packet_kb;
        job.engine.provider_uplink_kbps = uplink_kbps;
        job.engine.server_uplink_kbps = uplink_kbps;
        job.label = std::string(infra == InfrastructureKind::kUnicast
                                    ? "unicast/"
                                    : "multicast/") +
                    std::to_string(sizes[si]) + "/" +
                    std::string(to_string(methods[m]));
        jobs.push_back(std::move(job));
      }
    }
  }

  bench::ObsSession obs(argc, argv, flags, seed);
  obs.apply(jobs);
  // After obs.apply: trace-recording jobs must degrade to classic.
  obs.set_shards(bench::apply_shard_flags(jobs, shards, shard_epoch_s));

  const core::BatchRunner runner(
      {.threads = flags.jobs(), .heartbeat_period_s = flags.heartbeat()});
  const bench::WallTimer grid_timer;
  core::BatchRunStats batch_stats;
  const auto results =
      bench::run_batch_reported(runner, jobs, true, &batch_stats);
  obs.write(results, batch_stats);
  if (const std::string bench_json = flags.bench_json(); !bench_json.empty()) {
    const double wall_s = grid_timer.seconds();
    const std::string shards_str =
        shards == consistency::EngineConfig::ShardConfig::kAuto
            ? "auto"
            : std::to_string(shards);
    const std::string config =
        std::string(flags.small() ? "small" : (flags.large() ? "large" : "full")) +
        "/jobs=" + std::to_string(runner.threads()) +
        "/shards=" + shards_str;
    // Sharded --small runs record under their own bench name so the perf
    // gate (check_bench_regression.py) tracks each shard selection
    // separately (auto included: it is the default execution mode).
    const std::string bench_name =
        flags.small() ? (shards == consistency::EngineConfig::ShardConfig::kAuto
                             ? "fig20_small_shards_auto"
                             : "fig20_small_shards" + shards_str)
                      : "fig20_network_size/grid";
    bench::append_bench_record(bench_json, bench_name, config, wall_s,
                               static_cast<double>(jobs.size()) / wall_s);
  }

  double grow[2][3];
  std::size_t job_index = 0;
  for (int infra_idx = 0; infra_idx < 2; ++infra_idx) {
    std::cout << "\n--- ("
              << (infra_idx == 0 ? "a) unicast" : "b) multicast") << " ---\n";
    util::TextTable table({"servers", "Push_s", "Invalidation_s", "TTL_s"});
    std::vector<std::vector<double>> by_method(3);
    for (std::size_t n : sizes) {
      std::vector<double> row{static_cast<double>(n)};
      for (int m = 0; m < 3; ++m) {
        const auto& r = results[job_index++].sim;
        row.push_back(r.avg_server_inconsistency_s);
        by_method[m].push_back(r.avg_server_inconsistency_s);
      }
      table.add_row(row, 3);
    }
    table.print(std::cout);
    for (int m = 0; m < 3; ++m) {
      grow[infra_idx][m] = by_method[m].back() - by_method[m].front();
    }
  }

  util::ShapeCheck check("fig20");
  check.expect_greater(grow[0][0], grow[0][1],
                       "(a) Push degrades fastest with network size (unicast)");
  check.expect_greater(grow[0][1], grow[0][2],
                       "(a) Invalidation degrades faster than TTL (unicast)");
  check.expect_in_range(grow[0][2], -1.0, 1.0,
                        "(a) TTL stays essentially flat (high scalability)");
  check.expect_greater(grow[1][2], grow[1][0],
                       "(b) in multicast, TTL grows fastest (depth amplification)");
  return bench::finish(check);
}
