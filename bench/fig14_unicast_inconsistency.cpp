// Figure 14: inconsistency in the unicast-tree infrastructure.
//  (a) per-server average inconsistency, Push < Invalidation < TTL;
//      TTL averages ~TTL/2;
//  (b) per-node largest average end-user inconsistency: Push ~ Invalidation
//      < TTL, and TTL users exceed TTL servers.
#include "bench_evaluation.hpp"
#include "bench_obs.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cdnsim;
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  const bench::Flags flags(argc, argv);
  bench::banner("Figure 14: inconsistency in the unicast-tree infrastructure");

  auto eval = bench::evaluation_setup(flags);
  bench::ObsSession obs(argc, argv, flags,
                        static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  std::cout << "servers=" << eval.scenario.nodes->server_count()
            << " updates=" << eval.game.update_count() << " span="
            << eval.game.duration() << "s\n";

  std::vector<std::vector<double>> server_series, user_series;
  std::vector<double> server_avgs, user_avgs;
  const std::vector<std::string> names{"Push", "Invalidation", "TTL"};
  for (auto method : {UpdateMethod::kPush, UpdateMethod::kInvalidation,
                      UpdateMethod::kTtl}) {
    auto ec = bench::section4_config(method, InfrastructureKind::kUnicast);
    obs.configure(ec);
    const auto r = core::run_simulation(*eval.scenario.nodes, eval.game, ec);
    obs.add(std::string("unicast/") + std::string(to_string(method)), r);
    server_series.push_back(r.server_inconsistency_s);
    user_series.push_back(r.per_server_max_user_inconsistency_s);
    server_avgs.push_back(r.avg_server_inconsistency_s);
    user_avgs.push_back(util::mean(r.per_server_max_user_inconsistency_s));
  }

  bench::print_sorted_series("(a) content inconsistency of servers (s)",
                             server_series, names);
  bench::print_sorted_series("(b) largest avg inconsistency of end-users (s)",
                             user_series, names);

  util::TextTable summary({"method", "avg_server_s", "avg_user_s"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    summary.add_row({0.0 + static_cast<double>(i), server_avgs[i], user_avgs[i]}, 3);
  }
  std::cout << '\n';
  summary.print(std::cout);

  util::ShapeCheck check("fig14");
  check.expect_less(server_avgs[0], server_avgs[1],
                    "(a) Push < Invalidation on servers");
  check.expect_less(server_avgs[1], server_avgs[2],
                    "(a) Invalidation < TTL on servers");
  check.expect_near(server_avgs[2], 5.0, 0.35,
                    "(a) TTL average ~TTL/2 (paper: 5.7 s at TTL=10 s)");
  check.expect_less(user_avgs[0], user_avgs[2], "(b) Push users < TTL users");
  check.expect_near(user_avgs[0], user_avgs[1], 0.35,
                    "(b) Push ~ Invalidation for users");
  check.expect_greater(user_avgs[2], server_avgs[2],
                       "(b) TTL user inconsistency exceeds server inconsistency");
  obs.write_direct();
  return bench::finish(check);
}
