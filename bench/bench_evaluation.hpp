// Shared setup for the Section 4 / Section 5 trace-driven evaluation benches
// (Figs. 14-24): the paper's testbed — 170 servers mainly in the US, Europe
// and Asia, provider in Atlanta, a one-day live-game trace (~306 snapshots
// over 2 h 26 m), five simulated end-users per server polling every 10 s,
// 1 KB packets, updates starting at t = 60 s.
#pragma once

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "trace/game_generator.hpp"

namespace cdnsim::bench {

struct Evaluation {
  core::Scenario scenario;
  trace::UpdateTrace game;
};

inline Evaluation evaluation_setup(const Flags& flags,
                                   std::size_t default_servers = 170) {
  core::ScenarioConfig sc;
  sc.server_count = static_cast<std::size_t>(
      flags.get_int("servers", static_cast<std::int64_t>(default_servers)));
  if (flags.small()) sc.server_count = 60;
  sc.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // Section 4 treats the trace's 306 snapshots as individually delivered
  // updates (~25-30 s apart during play). That regime is what drives the
  // Section 5 findings: the self-adaptive method stays in TTL mode while
  // play is on (updates always arrive within a TTL) and switches to
  // invalidation only through the breaks, resynchronising every server's
  // poll phase at the first post-break visit. The measurement benches use
  // the bursty reading instead (see bench_measurement.hpp / DESIGN.md).
  trace::GameTraceConfig game_cfg;
  game_cfg.bursty = false;
  if (flags.small()) {
    game_cfg.period_s = 800;
    game_cfg.break_s = 300;
  }
  util::Rng rng(sc.seed ^ 0x6a3e);
  return Evaluation{core::build_scenario(sc),
                    trace::generate_game_trace(game_cfg, rng)};
}

/// The Section 4 defaults: server TTL 10 s (the paper's Sec. 4 experiments;
/// Sec. 5.3 uses 60 s), 5 users/server at 10 s, 1 KB packets.
inline consistency::EngineConfig section4_config(consistency::UpdateMethod method,
                                                 consistency::InfrastructureKind
                                                     infra) {
  consistency::EngineConfig ec;
  ec.method.method = method;
  ec.method.server_ttl_s = 10.0;
  ec.infrastructure.kind = infra;
  ec.infrastructure.tree_fanout = 2;  // binary, as in the paper
  ec.users_per_server = 5;
  ec.user_poll_period_s = 10.0;
  return ec;
}

/// The Section 5.3 defaults: 20 clusters, 4-ary supernode tree, server TTL
/// 60 s, observer TTL 10 s.
inline consistency::EngineConfig section5_config(consistency::UpdateMethod method,
                                                 consistency::InfrastructureKind
                                                     infra) {
  consistency::EngineConfig ec;
  ec.method.method = method;
  ec.method.server_ttl_s = 60.0;
  ec.infrastructure.kind = infra;
  ec.infrastructure.cluster_count = 20;
  ec.infrastructure.supernode_fanout = 4;
  ec.users_per_server = 5;
  ec.user_poll_period_s = 10.0;
  return ec;
}

struct NamedSystem {
  const char* name;
  consistency::UpdateMethod method;
  consistency::InfrastructureKind infra;
};

/// The six systems of Section 5.3 in the paper's naming.
inline std::vector<NamedSystem> section5_systems() {
  using consistency::InfrastructureKind;
  using consistency::UpdateMethod;
  return {
      {"Push", UpdateMethod::kPush, InfrastructureKind::kUnicast},
      {"Invalidation", UpdateMethod::kInvalidation, InfrastructureKind::kUnicast},
      {"TTL", UpdateMethod::kTtl, InfrastructureKind::kUnicast},
      {"Self", UpdateMethod::kSelfAdaptive, InfrastructureKind::kUnicast},
      {"Hybrid", UpdateMethod::kTtl, InfrastructureKind::kHybridSupernode},
      {"HAT", UpdateMethod::kSelfAdaptive, InfrastructureKind::kHybridSupernode},
  };
}

/// Sorted per-index series, as the paper's per-node figures plot.
inline void print_sorted_series(const std::string& title,
                                std::vector<std::vector<double>> series,
                                const std::vector<std::string>& names,
                                std::size_t rows = 12) {
  std::cout << "\n--- " << title << " (sorted per node, sampled) ---\n";
  for (auto& s : series) std::sort(s.begin(), s.end());
  std::vector<std::string> header{"index"};
  header.insert(header.end(), names.begin(), names.end());
  util::TextTable table(header);
  const std::size_t n = series.front().size();
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t idx = r * (n - 1) / (rows - 1);
    std::vector<double> row{static_cast<double>(idx + 1)};
    for (const auto& s : series) row.push_back(s[idx]);
    table.add_row(row, 3);
  }
  table.print(std::cout);
}

}  // namespace cdnsim::bench
